package nn

import (
	"encoding/json"
	"testing"
)

func TestFFNN48ParamCount(t *testing.T) {
	// The paper: "four fully connected layers and a total of 4,993
	// parameters".
	if got := FFNN48().ParamCount(); got != 4993 {
		t.Fatalf("FFNN-48 has %d parameters, want 4993", got)
	}
}

func TestFFNN69ParamCount(t *testing.T) {
	// The paper: FFNN-69 has 10,075 parameters.
	if got := FFNN69().ParamCount(); got != 10075 {
		t.Fatalf("FFNN-69 has %d parameters, want 10075", got)
	}
}

func TestCIFARNetParamCount(t *testing.T) {
	// The paper: the CIFAR model has 6,882 parameters.
	if got := CIFARNet().ParamCount(); got != 6882 {
		t.Fatalf("CIFAR net has %d parameters, want 6882", got)
	}
}

func TestFFNN48HasFourLinearLayers(t *testing.T) {
	a := FFNN48()
	linear := 0
	for _, l := range a.Layers {
		if l.Kind == KindLinear {
			linear++
		}
	}
	if linear != 4 {
		t.Fatalf("FFNN-48 has %d linear layers, want 4", linear)
	}
}

func TestParamBytes(t *testing.T) {
	if got := FFNN48().ParamBytes(); got != 4*4993 {
		t.Fatalf("ParamBytes = %d, want %d", got, 4*4993)
	}
}

func TestParamKeys(t *testing.T) {
	keys := FFNN48().ParamKeys()
	want := []string{
		"fc1.weight", "fc1.bias",
		"fc2.weight", "fc2.bias",
		"fc3.weight", "fc3.bias",
		"fc4.weight", "fc4.bias",
	}
	if len(keys) != len(want) {
		t.Fatalf("ParamKeys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("ParamKeys[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
}

func TestArchitectureJSONRoundTrip(t *testing.T) {
	for _, arch := range []*Architecture{FFNN48(), FFNN69(), CIFARNet()} {
		b, err := json.Marshal(arch)
		if err != nil {
			t.Fatalf("%s: marshal: %v", arch.Name, err)
		}
		var back Architecture
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", arch.Name, err)
		}
		if back.ParamCount() != arch.ParamCount() {
			t.Errorf("%s: param count changed %d -> %d", arch.Name, arch.ParamCount(), back.ParamCount())
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: round-tripped architecture invalid: %v", arch.Name, err)
		}
	}
}

func TestValidateRejectsBadArchitectures(t *testing.T) {
	cases := []struct {
		name string
		arch *Architecture
	}{
		{"no name", &Architecture{Layers: []LayerSpec{{Name: "l", Kind: KindReLU}}}},
		{"no layers", &Architecture{Name: "x"}},
		{"unnamed layer", &Architecture{Name: "x", Layers: []LayerSpec{{Kind: KindReLU}}}},
		{"duplicate names", &Architecture{Name: "x", Layers: []LayerSpec{
			{Name: "l", Kind: KindReLU}, {Name: "l", Kind: KindTanh}}}},
		{"bad linear dims", &Architecture{Name: "x", Layers: []LayerSpec{
			{Name: "l", Kind: KindLinear, In: 0, Out: 3}}}},
		{"bad conv dims", &Architecture{Name: "x", Layers: []LayerSpec{
			{Name: "l", Kind: KindConv2D, InChannels: 1, OutChannels: 0, Kernel: 3}}}},
		{"unknown kind", &Architecture{Name: "x", Layers: []LayerSpec{
			{Name: "l", Kind: "dropout"}}}},
	}
	for _, c := range cases {
		if err := c.arch.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid architecture", c.name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"FFNN-48", "FFNN-69", "CIFAR"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if a.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, a.Name)
		}
	}
	if _, err := ByName("resnet"); err == nil {
		t.Error("ByName accepted unknown architecture")
	}
}

func TestFFNNGeneric(t *testing.T) {
	a := FFNN("tiny", 2, []int{3}, 1)
	// fc1: 2*3+3=9; fc2: 3*1+1=4.
	if got := a.ParamCount(); got != 13 {
		t.Fatalf("tiny FFNN has %d params, want 13", got)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
