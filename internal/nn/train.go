package nn

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/rng"
	"github.com/mmm-go/mmm/internal/tensor"
)

// Data is the minimal training-data view the trainer needs. The dataset
// package implements it; tests implement it with in-memory slices.
type Data interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns the i-th (input, target) pair. Implementations may
	// return shared tensors; the trainer does not mutate them.
	Sample(i int) (x, y *tensor.Tensor)
}

// TrainConfig fully describes one training run. Together with the data
// reference and the starting parameters it *is* the provenance of the
// resulting model: re-running Train with equal inputs reproduces the
// parameters bit-for-bit.
type TrainConfig struct {
	Epochs       int     `json:"epochs"`
	BatchSize    int     `json:"batch_size"`
	LearningRate float32 `json:"learning_rate"`
	// Seed drives data shuffling. It is recorded per training run.
	Seed uint64 `json:"seed"`
	// Loss names the loss function ("mse" or "cross_entropy").
	Loss string `json:"loss"`
	// TrainLayers restricts the update to the named layers (a partial
	// update in the paper's terminology). Empty means all layers (a
	// full update). Gradients still flow through frozen layers.
	TrainLayers []string `json:"train_layers,omitempty"`
	// Optimizer selects the SGD variant; the zero value is plain SGD.
	Optimizer OptimizerConfig `json:"optimizer,omitempty"`
}

// Validate checks the configuration for obvious mistakes.
func (c TrainConfig) Validate() error {
	if c.Epochs <= 0 {
		return fmt.Errorf("nn: epochs must be positive, got %d", c.Epochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("nn: batch size must be positive, got %d", c.BatchSize)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("nn: learning rate must be positive, got %v", c.LearningRate)
	}
	if _, err := LossByName(c.Loss); err != nil {
		return err
	}
	return c.Optimizer.Validate()
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Epochs    int
	Samples   int
	FinalLoss float64
}

// Train runs plain mini-batch SGD on m over data, deterministically.
//
// Determinism contract: the only source of randomness is the shuffle
// stream derived from cfg.Seed; iteration order, gradient accumulation
// order, and the float32 update arithmetic are all fixed. This is the
// property the Provenance approach's recovery builds on.
func Train(m *Model, data Data, cfg TrainConfig) (TrainStats, error) {
	if err := cfg.Validate(); err != nil {
		return TrainStats{}, err
	}
	lossFn, err := LossByName(cfg.Loss)
	if err != nil {
		return TrainStats{}, err
	}
	n := data.Len()
	if n == 0 {
		return TrainStats{}, fmt.Errorf("nn: empty training data")
	}

	trainable := trainableParams(m, cfg.TrainLayers)
	if len(trainable) == 0 {
		return TrainStats{}, fmt.Errorf("nn: no trainable layers match %v", cfg.TrainLayers)
	}
	opt, err := newOptimizer(cfg.Optimizer, trainable)
	if err != nil {
		return TrainStats{}, err
	}

	shuffler := rng.New(cfg.Seed).Derive("shuffle")
	stats := TrainStats{Epochs: cfg.Epochs, Samples: n}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffler.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			m.ZeroGrad()
			for _, idx := range order[start:end] {
				x, y := data.Sample(idx)
				pred := m.Forward(x)
				loss, grad := lossFn.Eval(pred, y)
				epochLoss += loss
				m.Backward(grad)
			}
			opt.step(cfg.LearningRate, end-start)
		}
		stats.FinalLoss = epochLoss / float64(n)
	}
	return stats, nil
}

// Evaluate returns the mean loss of m over data without updating
// parameters.
func Evaluate(m *Model, data Data, lossName string) (float64, error) {
	lossFn, err := LossByName(lossName)
	if err != nil {
		return 0, err
	}
	n := data.Len()
	if n == 0 {
		return 0, fmt.Errorf("nn: empty evaluation data")
	}
	var total float64
	for i := 0; i < n; i++ {
		x, y := data.Sample(i)
		loss, _ := lossFn.Eval(m.Forward(x), y)
		total += loss
	}
	return total / float64(n), nil
}

type trainableParam struct {
	param *tensor.Tensor
	grad  *tensor.Tensor
}

// trainableParams pairs each selected layer's parameter tensors with
// their gradient tensors. layers == nil selects everything.
func trainableParams(m *Model, layers []string) []trainableParam {
	selected := func(string) bool { return true }
	if len(layers) > 0 {
		set := make(map[string]bool, len(layers))
		for _, l := range layers {
			set[l] = true
		}
		selected = func(name string) bool { return set[name] }
	}
	var out []trainableParam
	for _, l := range m.Layers {
		if !selected(l.Name()) {
			continue
		}
		ps, gs := l.Params(), l.Grads()
		for i := range ps {
			out = append(out, trainableParam{param: ps[i].Tensor, grad: gs[i].Tensor})
		}
	}
	return out
}

// SliceData adapts in-memory tensor slices to the Data interface.
type SliceData struct {
	X []*tensor.Tensor
	Y []*tensor.Tensor
}

// Len implements Data.
func (d SliceData) Len() int { return len(d.X) }

// Sample implements Data.
func (d SliceData) Sample(i int) (*tensor.Tensor, *tensor.Tensor) { return d.X[i], d.Y[i] }
