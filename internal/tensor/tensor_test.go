package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/mmm-go/mmm/internal/rng"
)

func randTensor(r *rng.RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewScalar(t *testing.T) {
	s := New()
	if s.Len() != 1 || s.Dims() != 0 {
		t.Fatalf("scalar tensor: Len=%d Dims=%d", s.Len(), s.Dims())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major layout: offset of (1,2,3) is ((1*3)+2)*4+3 = 23.
	if x.Data[23] != 7.5 {
		t.Fatalf("row-major offset wrong: Data[23] = %v", x.Data[23])
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := x.Clone()
	c.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
	c.Shape[0] = 4
	if x.Shape[0] != 2 {
		t.Fatal("Clone shares shape with original")
	}
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("Reshape element order changed: %v", y.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	x.Reshape(4)
}

func TestEqual(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2}, 2)
	c := FromSlice([]float32{1, 3}, 2)
	d := FromSlice([]float32{1, 2}, 1, 2)
	if !a.Equal(b) {
		t.Error("identical tensors not Equal")
	}
	if a.Equal(c) {
		t.Error("different data reported Equal")
	}
	if a.Equal(d) {
		t.Error("different shape reported Equal")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	sum := Add(a, b)
	if want := []float32{11, 22, 33}; !sum.Equal(FromSlice(want, 3)) {
		t.Errorf("Add = %v", sum.Data)
	}
	diff := Sub(b, a)
	if want := []float32{9, 18, 27}; !diff.Equal(FromSlice(want, 3)) {
		t.Errorf("Sub = %v", diff.Data)
	}
	c := a.Clone()
	c.ScaleInPlace(2)
	if want := []float32{2, 4, 6}; !c.Equal(FromSlice(want, 3)) {
		t.Errorf("ScaleInPlace = %v", c.Data)
	}
	c = a.Clone()
	c.AXPYInPlace(-0.5, b)
	if want := []float32{-4, -8, -12}; !c.Equal(FromSlice(want, 3)) {
		t.Errorf("AXPYInPlace = %v", c.Data)
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !c.Equal(want) {
		t.Errorf("MatMul = %v, want %v", c.Data, want.Data)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad shapes did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	r := rng.New(1)
	a := randTensor(r, 4, 6)
	b := randTensor(r, 6, 5)
	want := MatMul(a, b)
	gotA := MatMulTransA(Transpose(a), b)
	if !approxEqual(want, gotA, 1e-4) {
		t.Error("MatMulTransA(Aᵀ, B) != MatMul(A, B)")
	}
	gotB := MatMulTransB(a, Transpose(b))
	if !approxEqual(want, gotB, 1e-4) {
		t.Error("MatMulTransB(A, Bᵀ) != MatMul(A, B)")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(2)
	a := randTensor(r, 3, 7)
	if !Transpose(Transpose(a)).Equal(a) {
		t.Error("Transpose(Transpose(a)) != a")
	}
}

func approxEqual(a, b *Tensor, eps float32) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

func TestSumMaxAbs(t *testing.T) {
	a := FromSlice([]float32{1, -5, 3}, 3)
	if got := a.Sum(); got != -1 {
		t.Errorf("Sum = %v, want -1", got)
	}
	if got := a.MaxAbs(); got != 5 {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	r := rng.New(3)
	a := randTensor(r, 5, 7)
	b := New(5, 7)
	n, err := b.SetFromBytes(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 4*35 {
		t.Fatalf("consumed %d bytes, want %d", n, 4*35)
	}
	if !a.Equal(b) {
		t.Fatal("byte round trip changed values")
	}
}

func TestSerializePreservesSpecialValues(t *testing.T) {
	a := FromSlice([]float32{
		float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)),
		math.MaxFloat32, math.SmallestNonzeroFloat32,
	}, 6)
	b := New(6)
	if _, err := b.SetFromBytes(a.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			t.Errorf("element %d changed bits: %x -> %x", i,
				math.Float32bits(a.Data[i]), math.Float32bits(b.Data[i]))
		}
	}
}

func TestSetFromBytesShort(t *testing.T) {
	b := New(4)
	if _, err := b.SetFromBytes(make([]byte, 15)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestWriteToReadFrom(t *testing.T) {
	r := rng.New(4)
	a := randTensor(r, 3, 3)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(3, 3)
	if _, err := b.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("WriteTo/ReadFrom round trip changed values")
	}
}

func TestReadFromShortStream(t *testing.T) {
	b := New(10)
	if _, err := b.ReadFrom(bytes.NewReader(make([]byte, 5))); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		a := FromSlice(vals, len(vals))
		b := New(len(vals))
		if _, err := b.SetFromBytes(a.Bytes()); err != nil {
			return false
		}
		for i := range vals {
			if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := rng.New(seed)
		a := randTensor(r, int(n))
		b := randTensor(r, int(n))
		return Add(a, b).Equal(Add(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubAddInverse(t *testing.T) {
	// a + b - b == a holds exactly in IEEE float when no overflow occurs
	// and values are well-scaled... it does NOT hold in general, so we
	// check the restricted exact identity: (a - b) + b may round. Instead
	// verify the exact involution a - (a - b) == b is within 1 ulp-ish.
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := rng.New(seed)
		a := randTensor(r, int(n))
		b := randTensor(r, int(n))
		got := Sub(a, Sub(a, b))
		return approxEqual(got, b, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := randTensor(r, 3, 4)
		b := randTensor(r, 4, 2)
		c := randTensor(r, 4, 2)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return approxEqual(left, right, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORDeltaRoundTrip(t *testing.T) {
	r := rng.New(21)
	base := randTensor(r, 6, 7)
	target := base.Clone()
	for i := range target.Data {
		target.Data[i] *= 1.001
	}
	delta := AppendXORBytes(nil, target, base)
	restored := base.Clone()
	n, err := restored.XORFromBytes(delta)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(delta) {
		t.Fatalf("consumed %d bytes of %d", n, len(delta))
	}
	if !restored.Equal(target) {
		t.Fatal("XOR delta did not restore the target exactly")
	}
}

func TestXORDeltaSelfIsZero(t *testing.T) {
	r := rng.New(22)
	a := randTensor(r, 10)
	delta := AppendXORBytes(nil, a, a)
	for i, b := range delta {
		if b != 0 {
			t.Fatalf("self-delta byte %d = %#x, want 0", i, b)
		}
	}
}

func TestXORFromBytesShortBuffer(t *testing.T) {
	a := New(4)
	if _, err := a.XORFromBytes(make([]byte, 10)); err == nil {
		t.Fatal("short delta accepted")
	}
}

func TestQuickXORInvolution(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := rng.New(seed)
		base := randTensor(r, int(n))
		target := randTensor(r, int(n))
		delta := AppendXORBytes(nil, target, base)
		restored := base.Clone()
		if _, err := restored.XORFromBytes(delta); err != nil {
			return false
		}
		// Bit-exact equality, including any NaN payloads.
		for i := range restored.Data {
			if math.Float32bits(restored.Data[i]) != math.Float32bits(target.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice([]float32{1, 2}, 2)
	if small.String() == "" {
		t.Error("empty String for small tensor")
	}
	large := New(100)
	if large.String() == "" {
		t.Error("empty String for large tensor")
	}
}
