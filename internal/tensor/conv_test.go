package tensor

import (
	"testing"

	"github.com/mmm-go/mmm/internal/rng"
)

func TestConv2DSameIdentityKernel(t *testing.T) {
	// A 1-channel 3×3 identity kernel (1 at center) must reproduce the input.
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	k := New(1, 1, 3, 3)
	k.Set(1, 0, 0, 1, 1)
	b := New(1)
	y := Conv2DSame(x, k, b)
	if !y.Equal(x) {
		t.Fatalf("identity conv changed input: %v", y.Data)
	}
}

func TestConv2DSameShiftKernel(t *testing.T) {
	// Kernel with 1 at top-left shifts the image down-right (with zero pad).
	x := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	k := New(1, 1, 3, 3)
	k.Set(1, 0, 0, 0, 0)
	y := Conv2DSame(x, k, New(1))
	want := FromSlice([]float32{
		0, 0,
		0, 1,
	}, 1, 2, 2)
	if !y.Equal(want) {
		t.Fatalf("shift conv = %v, want %v", y.Data, want.Data)
	}
}

func TestConv2DSameBias(t *testing.T) {
	x := New(1, 2, 2)
	k := New(2, 1, 3, 3)
	b := FromSlice([]float32{5, -1}, 2)
	y := Conv2DSame(x, k, b)
	for i := 0; i < 4; i++ {
		if y.Data[i] != 5 {
			t.Fatalf("channel 0 element %d = %v, want bias 5", i, y.Data[i])
		}
		if y.Data[4+i] != -1 {
			t.Fatalf("channel 1 element %d = %v, want bias -1", i, y.Data[4+i])
		}
	}
}

func TestConv2DSameMultiChannel(t *testing.T) {
	// Two input channels, kernel summing both center pixels.
	x := New(2, 2, 2)
	x.Set(3, 0, 0, 0)
	x.Set(4, 1, 0, 0)
	k := New(1, 2, 1, 1)
	k.Set(1, 0, 0, 0, 0)
	k.Set(2, 0, 1, 0, 0)
	y := Conv2DSame(x, k, New(1))
	if got := y.At(0, 0, 0); got != 11 { // 3*1 + 4*2
		t.Fatalf("multi-channel conv = %v, want 11", got)
	}
}

// numericalGradCheck verifies analytic conv gradients against central
// finite differences on a random instance.
func TestConv2DSameBackwardNumerical(t *testing.T) {
	r := rng.New(77)
	x := randTensor(r, 2, 4, 4)
	k := randTensor(r, 3, 2, 3, 3)
	b := randTensor(r, 3)
	gradOut := randTensor(r, 3, 4, 4)

	loss := func(x, k, b *Tensor) float64 {
		return Dot(Conv2DSame(x, k, b), gradOut)
	}

	gradX, gradK, gradB := Conv2DSameBackward(x, k, gradOut)

	const eps = 1e-2
	const tol = 2e-2
	check := func(name string, param, grad *Tensor, idxs []int) {
		for _, i := range idxs {
			orig := param.Data[i]
			param.Data[i] = orig + eps
			up := loss(x, k, b)
			param.Data[i] = orig - eps
			down := loss(x, k, b)
			param.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := float64(grad.Data[i])
			if diff := numeric - analytic; diff > tol || diff < -tol {
				t.Errorf("%s grad[%d]: numeric %v, analytic %v", name, i, numeric, analytic)
			}
		}
	}
	check("x", x, gradX, []int{0, 5, 17, 31})
	check("k", k, gradK, []int{0, 7, 20, 53})
	check("b", b, gradB, []int{0, 1, 2})
}

func TestMaxPool2Known(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 9,
	}, 1, 4, 4)
	y, arg := MaxPool2(x)
	want := FromSlice([]float32{4, 8, -1, 9}, 1, 2, 2)
	if !y.Equal(want) {
		t.Fatalf("MaxPool2 = %v, want %v", y.Data, want.Data)
	}
	// arg[0] must point at value 4, which lives at flat index 5.
	if arg[0] != 5 {
		t.Fatalf("argmax[0] = %d, want 5", arg[0])
	}
}

func TestMaxPool2Backward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	y, arg := MaxPool2(x)
	if y.Len() != 1 {
		t.Fatalf("pooled length %d, want 1", y.Len())
	}
	gradOut := FromSlice([]float32{10}, 1, 1, 1)
	gradX := MaxPool2Backward(x.Shape, arg, gradOut)
	want := FromSlice([]float32{0, 0, 0, 10}, 1, 2, 2)
	if !gradX.Equal(want) {
		t.Fatalf("MaxPool2Backward = %v, want %v", gradX.Data, want.Data)
	}
}

func TestMaxPool2OddDimensionsTruncate(t *testing.T) {
	x := New(1, 5, 5)
	y, _ := MaxPool2(x)
	if y.Shape[1] != 2 || y.Shape[2] != 2 {
		t.Fatalf("pooled shape = %v, want [1 2 2]", y.Shape)
	}
}

func BenchmarkConv2DSame(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 3, 32, 32)
	k := randTensor(r, 15, 3, 5, 5)
	bias := randTensor(r, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Conv2DSame(x, k, bias)
	}
}

func BenchmarkMatMul(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 64, 64)
	y := randTensor(r, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, y)
	}
}
