package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The management approaches persist parameters as raw little-endian
// float32 bytes with no per-tensor framing: the Baseline approach
// concatenates every model's parameters into one binary file and relies
// on the (single, shared) architecture to know how many floats belong
// to each layer. These helpers implement that encoding.

// AppendBytes appends t's elements as little-endian float32 to dst and
// returns the extended slice. Shape is intentionally not encoded.
func (t *Tensor) AppendBytes(dst []byte) []byte {
	for _, v := range t.Data {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// Bytes returns t's elements as little-endian float32 bytes.
func (t *Tensor) Bytes() []byte {
	return t.AppendBytes(make([]byte, 0, 4*len(t.Data)))
}

// SetFromBytes fills t's elements from little-endian float32 bytes.
// It returns the number of bytes consumed.
func (t *Tensor) SetFromBytes(b []byte) (int, error) {
	need := 4 * len(t.Data)
	if len(b) < need {
		return 0, fmt.Errorf("tensor: need %d bytes for shape %v, have %d", need, t.Shape, len(b))
	}
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return need, nil
}

// AppendXORBytes appends the byte-wise XOR of a's and b's raw float32
// encodings to dst. XOR deltas of related parameter tensors are mostly
// zero bytes (retrained floats keep their sign, exponent, and high
// mantissa bits), which general-purpose compressors then crunch — the
// delta-encoding technique of ModelHub-style parameter archives.
func AppendXORBytes(dst []byte, a, b *Tensor) []byte {
	mustSameShape(a, b, "AppendXORBytes")
	for i := range a.Data {
		x := math.Float32bits(a.Data[i]) ^ math.Float32bits(b.Data[i])
		dst = binary.LittleEndian.AppendUint32(dst, x)
	}
	return dst
}

// XORFromBytes XORs t's elements with the little-endian float32 words
// in b, in place: applying an XOR delta on top of the base value it was
// computed from restores the target value exactly. It returns the
// number of bytes consumed.
func (t *Tensor) XORFromBytes(b []byte) (int, error) {
	need := 4 * len(t.Data)
	if len(b) < need {
		return 0, fmt.Errorf("tensor: need %d bytes for shape %v, have %d", need, t.Shape, len(b))
	}
	for i := range t.Data {
		x := math.Float32bits(t.Data[i]) ^ binary.LittleEndian.Uint32(b[4*i:])
		t.Data[i] = math.Float32frombits(x)
	}
	return need, nil
}

// WriteTo writes t's raw float32 bytes to w.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(t.Bytes())
	return int64(n), err
}

// ReadFrom fills t from exactly 4*Len() bytes read from r.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	buf := make([]byte, 4*len(t.Data))
	n, err := io.ReadFull(r, buf)
	if err != nil {
		return int64(n), fmt.Errorf("tensor: reading %d bytes for shape %v: %w", len(buf), t.Shape, err)
	}
	if _, err := t.SetFromBytes(buf); err != nil {
		return int64(n), err
	}
	return int64(n), nil
}
