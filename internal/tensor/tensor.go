// Package tensor implements dense float32 tensors and the small set of
// numeric operations needed to train and evaluate the paper's model
// architectures (fully connected battery models and a small CNN).
//
// Parameters are float32 because the paper's storage accounting assumes
// 4-byte floats ("All approaches save all 4,993 parameters per model
// represented by 4 Byte floats"). Accumulations inside operations use
// float64 where it is cheap to do so, keeping training numerically
// stable without changing the stored representation.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, row-major float32 tensor.
//
// The zero value is an empty scalar-less tensor; use New or the
// constructors below. Data is exposed so that hot loops in the nn
// package can operate without bounds-check overhead from accessors;
// callers must not change the length of Data.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero-filled tensor of the given shape.
// A tensor with no dimensions has a single element (a scalar).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice returns a tensor of the given shape backed by a copy of data.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := New(shape...)
	if len(data) != len(t.Data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, len(t.Data)))
	}
	copy(t.Data, data)
	return t
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view-copy of t with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n))
	}
	c := t.Clone()
	c.Shape = append([]int(nil), shape...)
	return c
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and o have the same shape and bit-identical data.
// Bit-identity (not epsilon closeness) is deliberate: the management
// approaches guarantee exact recovery, and tests assert it through here.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.Data {
		if t.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddInPlace adds o element-wise into t.
func (t *Tensor) AddInPlace(o *Tensor) {
	mustSameShape(t, o, "AddInPlace")
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) {
	mustSameShape(t, o, "SubInPlace")
	for i := range t.Data {
		t.Data[i] -= o.Data[i]
	}
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPYInPlace computes t += a*x, the update step of plain SGD.
func (t *Tensor) AXPYInPlace(a float32, x *Tensor) {
	mustSameShape(t, x, "AXPYInPlace")
	for i := range t.Data {
		t.Data[i] += a * x.Data[i]
	}
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor {
	c := t.Clone()
	c.AddInPlace(o)
	return c
}

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor {
	c := t.Clone()
	c.SubInPlace(o)
	return c
}

// Dot returns the inner product of two equally shaped tensors,
// accumulated in float64.
func Dot(a, b *Tensor) float64 {
	mustSameShape(a, b, "Dot")
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	// ikj loop order: streams through B and C rows, cache-friendly.
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		cr := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				cr[j] += av * br[j]
			}
		}
	}
	return c
}

// MatMulTransA computes C = Aᵀ·B for 2-D tensors A (k×m) and B (k×n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransA requires 2-D tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	for p := 0; p < k; p++ {
		ar := a.Data[p*m : (p+1)*m]
		br := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := ar[i]
			if av == 0 {
				continue
			}
			cr := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				cr[j] += av * br[j]
			}
		}
	}
	return c
}

// MatMulTransB computes C = A·Bᵀ for 2-D tensors A (m×k) and B (n×k).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransB requires 2-D tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		cr := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b.Data[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += ar[p] * br[p]
			}
			cr[j] = s
		}
	}
	return c
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	c := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return c
}

// Sum returns the sum of all elements, accumulated in float64.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.Shape)
	if len(t.Data) <= 8 {
		fmt.Fprintf(&b, "%v", t.Data)
	} else {
		fmt.Fprintf(&b, "[%v %v %v ... %v]", t.Data[0], t.Data[1], t.Data[2], t.Data[len(t.Data)-1])
	}
	return b.String()
}

func mustSameShape(a, b *Tensor, op string) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
