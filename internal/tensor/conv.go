package tensor

import "fmt"

// Convolution and pooling primitives for the CIFAR CNN. Layouts follow
// the usual CHW convention: images are (channels, height, width) and
// kernels are (outC, inC, kH, kW). Only what the paper's 6,882-parameter
// CNN needs is implemented: 'same' padded stride-1 convolution and 2×2
// max pooling.

// Conv2DSame computes a stride-1 'same'-padded 2-D convolution of the
// input x (inC×h×w) with kernel k (outC×inC×kH×kW) plus per-output-
// channel bias, producing (outC×h×w).
func Conv2DSame(x, k, bias *Tensor) *Tensor {
	if x.Dims() != 3 || k.Dims() != 4 {
		panic("tensor: Conv2DSame requires 3-D input and 4-D kernel")
	}
	inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	outC, kInC, kh, kw := k.Shape[0], k.Shape[1], k.Shape[2], k.Shape[3]
	if inC != kInC {
		panic(fmt.Sprintf("tensor: Conv2DSame channel mismatch: input %d, kernel %d", inC, kInC))
	}
	if bias.Len() != outC {
		panic(fmt.Sprintf("tensor: Conv2DSame bias length %d, want %d", bias.Len(), outC))
	}
	padH, padW := kh/2, kw/2
	out := New(outC, h, w)
	for oc := 0; oc < outC; oc++ {
		b := bias.Data[oc]
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				s := b
				for ic := 0; ic < inC; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox + kx - padW
							if ix < 0 || ix >= w {
								continue
							}
							s += x.Data[(ic*h+iy)*w+ix] * k.Data[((oc*inC+ic)*kh+ky)*kw+kx]
						}
					}
				}
				out.Data[(oc*h+oy)*w+ox] = s
			}
		}
	}
	return out
}

// Conv2DSameBackward computes the gradients of a 'same' convolution:
// given upstream gradient gradOut (outC×h×w), it returns the gradient
// w.r.t. the input x, the kernel k, and the bias.
func Conv2DSameBackward(x, k, gradOut *Tensor) (gradX, gradK, gradB *Tensor) {
	inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	outC, _, kh, kw := k.Shape[0], k.Shape[1], k.Shape[2], k.Shape[3]
	padH, padW := kh/2, kw/2
	gradX = New(inC, h, w)
	gradK = New(outC, inC, kh, kw)
	gradB = New(outC)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				g := gradOut.Data[(oc*h+oy)*w+ox]
				if g == 0 {
					continue
				}
				gradB.Data[oc] += g
				for ic := 0; ic < inC; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox + kx - padW
							if ix < 0 || ix >= w {
								continue
							}
							gradK.Data[((oc*inC+ic)*kh+ky)*kw+kx] += g * x.Data[(ic*h+iy)*w+ix]
							gradX.Data[(ic*h+iy)*w+ix] += g * k.Data[((oc*inC+ic)*kh+ky)*kw+kx]
						}
					}
				}
			}
		}
	}
	return gradX, gradK, gradB
}

// MaxPool2 performs 2×2 max pooling with stride 2 on x (c×h×w) and
// additionally returns the argmax index (into x.Data) per output cell,
// which the backward pass needs.
func MaxPool2(x *Tensor) (*Tensor, []int) {
	if x.Dims() != 3 {
		panic("tensor: MaxPool2 requires a 3-D tensor")
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	out := New(c, oh, ow)
	arg := make([]int, out.Len())
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := (ch*h+2*oy)*w + 2*ox
				best := x.Data[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (ch*h+2*oy+dy)*w + 2*ox + dx
						if x.Data[idx] > best {
							best = x.Data[idx]
							bestIdx = idx
						}
					}
				}
				o := (ch*oh+oy)*ow + ox
				out.Data[o] = best
				arg[o] = bestIdx
			}
		}
	}
	return out, arg
}

// MaxPool2Backward routes the upstream gradient back to the argmax
// positions recorded by MaxPool2.
func MaxPool2Backward(inputShape []int, arg []int, gradOut *Tensor) *Tensor {
	gradX := New(inputShape...)
	for o, idx := range arg {
		gradX.Data[idx] += gradOut.Data[o]
	}
	return gradX
}
