package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Member is one mmserve node in the cluster.
type Member struct {
	// Name is the node's stable identity — what the ring hashes. It
	// must survive restarts and address changes, or every restart
	// becomes a rebalance.
	Name string `json:"name"`
	// URL is the node's base URL, e.g. "http://node-a:8080".
	URL string `json:"url"`
}

// MemberStatus is a member plus the router's current view of it.
type MemberStatus struct {
	Member
	// Down marks a member that failed its last probe (or a recent
	// request). Down members keep their ring positions — placement is
	// membership-determined, not health-determined — but are skipped
	// for reads and counted as failures for writes.
	Down bool `json:"down,omitempty"`
	// Incompatible carries the version-preflight rejection reason; an
	// incompatible member is never routed to.
	Incompatible string `json:"incompatible,omitempty"`
}

// Table is the membership view a router operates on: the member set,
// their health, and the consistent-hash ring derived from them. All
// methods are safe for concurrent use; the ring is rebuilt on
// membership changes only (health flips don't move placement).
type Table struct {
	mu       sync.RWMutex
	replicas int
	vnodes   int
	members  map[string]Member
	down     map[string]bool
	incompat map[string]string
	ring     *ring
}

// NewTable builds an empty membership table with the given replication
// factor (min 1) and virtual-node count (0 = DefaultVNodes).
func NewTable(replicas, vnodes int) *Table {
	if replicas < 1 {
		replicas = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Table{
		replicas: replicas,
		vnodes:   vnodes,
		members:  map[string]Member{},
		down:     map[string]bool{},
		incompat: map[string]string{},
		ring:     buildRing(nil, vnodes),
	}
}

// Replicas is the configured replication factor R.
func (t *Table) Replicas() int { return t.replicas }

// Add inserts or updates a member and rebuilds the ring. Updating a
// member's URL under the same name does not move placement.
func (t *Table) Add(m Member) error {
	if m.Name == "" || m.URL == "" {
		return fmt.Errorf("cluster: member needs a name and a URL")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.members[m.Name] = m
	delete(t.down, m.Name)
	delete(t.incompat, m.Name)
	t.rebuild()
	return nil
}

// Remove deletes a member and rebuilds the ring. Keys it owned move to
// the next nodes on their arcs; a subsequent rebalance re-replicates.
func (t *Table) Remove(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.members, name)
	delete(t.down, name)
	delete(t.incompat, name)
	t.rebuild()
}

// rebuild recomputes the ring; callers hold t.mu.
func (t *Table) rebuild() {
	names := make([]string, 0, len(t.members))
	for n := range t.members {
		names = append(names, n)
	}
	sort.Strings(names)
	t.ring = buildRing(names, t.vnodes)
}

// SetDown flips a member's health. Unknown names are ignored.
func (t *Table) SetDown(name string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.members[name]; !ok {
		return
	}
	if down {
		t.down[name] = true
	} else {
		delete(t.down, name)
	}
}

// SetIncompatible marks a member rejected by the version preflight
// (reason "" clears the mark).
func (t *Table) SetIncompatible(name, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.members[name]; !ok {
		return
	}
	if reason == "" {
		delete(t.incompat, name)
	} else {
		t.incompat[name] = reason
	}
}

// Usable reports whether a member is routable: known, up, compatible.
func (t *Table) Usable(name string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.members[name]
	return ok && !t.down[name] && t.incompat[name] == ""
}

// Members lists the membership with health, sorted by name.
func (t *Table) Members() []MemberStatus {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]MemberStatus, 0, len(t.members))
	for name, m := range t.members {
		out = append(out, MemberStatus{Member: m, Down: t.down[name], Incompatible: t.incompat[name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Owners returns the R members owning a placement key, in ring order —
// including down ones: placement does not chase health, so a recovered
// node finds its data where it left it. Callers filter with Usable (or
// take UsableOwners) when they need live targets.
func (t *Table) Owners(key string) []Member {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.resolve(t.ring.owners(key, t.replicas))
}

// Sequence returns every member in ring order from key's position:
// owners first, then the rest — the read path's probe order.
func (t *Table) Sequence(key string) []Member {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.resolve(t.ring.sequence(key))
}

// resolve maps node names to Members; callers hold t.mu.
func (t *Table) resolve(names []string) []Member {
	out := make([]Member, 0, len(names))
	for _, n := range names {
		if m, ok := t.members[n]; ok {
			out = append(out, m)
		}
	}
	return out
}
