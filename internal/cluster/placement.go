package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
)

// Placement: which ring key a set hashes under.
//
// Sets are not placed by hashing their ID directly — a derived set
// must land on the same replicas as its base, or recovering it would
// need a cross-node chain walk. Instead every router-minted ID embeds
// a placement group token ("g" + 16 hex digits, '-'-delimited): root
// sets get a fresh group derived from their idempotency key, derived
// sets inherit the group by extending their base's ID. PlacementKey
// extracts the token, so the whole lineage shares one ring position.
// IDs without a token (saved outside the router) fall back to hashing
// the ID itself, which is stable if arbitrary.

// groupLen and derivedLen size the hex tokens: 64 bits of group, 48
// bits of per-derivation suffix — collision-safe far beyond the set
// counts a management store holds.
const (
	groupLen   = 16
	derivedLen = 12
)

// MintID deterministically derives the cluster-wide set ID for a
// logical save: the same idempotency key always mints the same ID, so
// every replica stores the save under one name and a retry can never
// mint a second identity. base is the ID of the set the save derives
// from ("" for root saves).
func MintID(idempotencyKey, base string) string {
	if base == "" {
		sum := sha256.Sum256([]byte("root:" + idempotencyKey))
		return "r-g" + hex.EncodeToString(sum[:])[:groupLen]
	}
	sum := sha256.Sum256([]byte("derived:" + base + ":" + idempotencyKey))
	return base + "-d" + hex.EncodeToString(sum[:])[:derivedLen]
}

// PlacementKey maps a set ID onto its ring key: the embedded group
// token when the ID was router-minted (so a base and everything
// derived from it co-locate), a hash of the full ID otherwise.
func PlacementKey(setID string) string {
	for _, seg := range strings.Split(setID, "-") {
		if len(seg) == groupLen+1 && seg[0] == 'g' && isHex(seg[1:]) {
			return "group:" + seg[1:]
		}
	}
	sum := sha256.Sum256([]byte("set:" + setID))
	return "group:" + hex.EncodeToString(sum[:])[:groupLen]
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
