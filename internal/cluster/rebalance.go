package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/server"
)

// Rebalancing: after a membership change (node joined, left, or
// rejoined with a stale store), the ring's owner assignments and the
// cluster's actual data placement disagree. Rebalance walks the
// catalog, computes the owner diff for every set, and tells each
// under-replicated owner to sync the set from a peer that has it —
// destination-driven over the pull protocol, so a rejoining node that
// already holds most chunks fetches only the delta.

// approachNames are the namespaces a rebalance covers.
var approachNames = []string{"baseline", "mmlib", "provenance", "update"}

// rebalanceWorkers bounds concurrent set syncs; syncing is
// network+disk bound on the destinations, so a small fan-out saturates
// without stampeding a freshly rejoined node.
const rebalanceWorkers = 4

// Move is one set transfer a rebalance performed (or failed).
type Move struct {
	Approach string `json:"approach"`
	SetID    string `json:"set_id"`
	// To is the owner that was missing the set, From the peer it
	// pulled from.
	To   string `json:"to"`
	From string `json:"from"`
	// Report is the destination's sync accounting (nil on error).
	Report *server.SyncReport `json:"report,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// RebalanceReport sums what a rebalance did. The wire-efficiency claim
// is auditable from it: BytesFetched is what actually crossed the
// network, ChunkCacheHits×(avg chunk size) is what staying put saved.
type RebalanceReport struct {
	// Sets is the number of distinct sets examined across approaches.
	Sets int `json:"sets"`
	// Synced counts sets copied onto at least one new owner;
	// AlreadyPresent counts moves that found the set already there.
	Synced         int `json:"synced"`
	AlreadyPresent int `json:"already_present"`
	// Unplaceable counts sets some owner should hold but no usable
	// peer could supply — data whose only replicas are down.
	Unplaceable int `json:"unplaceable"`
	// ChunksFetched, ChunkCacheHits, BytesFetched aggregate the
	// destinations' pull accounting across all moves.
	ChunksFetched  int64 `json:"chunks_fetched"`
	ChunkCacheHits int64 `json:"chunk_cache_hits"`
	BytesFetched   int64 `json:"bytes_fetched"`
	// Moves lists every transfer, deterministic order.
	Moves []Move `json:"moves,omitempty"`
	// Errors lists member-level failures (listing failures, sync
	// errors) that left the rebalance incomplete.
	Errors []string `json:"errors,omitempty"`
}

// Rebalance re-establishes the ring's placement: every usable owner of
// every known set ends up holding it. Safe to run repeatedly —
// syncing is idempotent and a clean cluster rebalances to zero moves.
func (rt *Router) Rebalance(ctx context.Context) (*RebalanceReport, error) {
	report := &RebalanceReport{}
	members := rt.usable()
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: no usable members to rebalance")
	}

	// Catalog: which usable member holds which set, per approach.
	type setKey struct{ approach, id string }
	holders := map[setKey][]Member{}
	var mu sync.Mutex
	for _, approach := range approachNames {
		oks, errs := rt.fanout(ctx, func(ctx context.Context, m Member) (any, error) {
			return rt.client(m).List(ctx, approach)
		})
		for name, err := range errs {
			report.Errors = append(report.Errors,
				fmt.Sprintf("listing %s on %s: %v", approach, name, err))
		}
		for name, v := range oks {
			var member Member
			for _, m := range members {
				if m.Name == name {
					member = m
				}
			}
			for _, id := range v.([]string) {
				holders[setKey{approach, id}] = append(holders[setKey{approach, id}], member)
			}
		}
	}
	report.Sets = len(holders)

	// Owner diff → move list.
	var moves []Move
	fromFor := map[int]Member{}
	for key, have := range holders {
		owners := rt.table.Owners(PlacementKey(key.id))
		hasIt := map[string]bool{}
		for _, m := range have {
			hasIt[m.Name] = true
		}
		for _, owner := range owners {
			if hasIt[owner.Name] || !rt.table.Usable(owner.Name) {
				continue
			}
			// Source: any usable holder. Prefer the first in ring order
			// for determinism.
			var from *Member
			for _, h := range have {
				if rt.table.Usable(h.Name) {
					from = &h
					break
				}
			}
			if from == nil {
				report.Unplaceable++
				continue
			}
			fromFor[len(moves)] = *from
			moves = append(moves, Move{Approach: key.approach, SetID: key.id, To: owner.Name, From: from.Name})
		}
	}

	// Execute, bounded. Each move is independent; failures are recorded
	// per move rather than aborting the pass.
	results := make([]Move, len(moves))
	memberByName := map[string]Member{}
	for _, m := range members {
		memberByName[m.Name] = m
	}
	_ = pool.Run(ctx, rebalanceWorkers, len(moves), func(i int) error {
		mv := moves[i]
		dest := memberByName[mv.To]
		src := fromFor[i]
		rt.reg.Counter(MetricRouterSyncs).Inc()
		rep, err := rt.client(dest).Sync(ctx, mv.Approach, mv.SetID, src.URL)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			mv.Error = err.Error()
		} else {
			mv.Report = rep
		}
		results[i] = mv
		return nil
	})

	for _, mv := range results {
		if mv.Error != "" {
			report.Errors = append(report.Errors,
				fmt.Sprintf("sync %s/%s onto %s: %s", mv.Approach, mv.SetID, mv.To, mv.Error))
		} else if mv.Report != nil {
			if mv.Report.AlreadyPresent {
				report.AlreadyPresent++
			} else {
				report.Synced++
			}
			report.ChunksFetched += mv.Report.ChunksFetched
			report.ChunkCacheHits += mv.Report.ChunkCacheHits
			report.BytesFetched += mv.Report.BytesFetched
			rt.reg.Counter(MetricRouterSyncBytes).Add(mv.Report.BytesFetched)
		}
		report.Moves = append(report.Moves, mv)
	}
	sort.Slice(report.Moves, func(i, j int) bool {
		a, b := report.Moves[i], report.Moves[j]
		if a.Approach != b.Approach {
			return a.Approach < b.Approach
		}
		if a.SetID != b.SetID {
			return a.SetID < b.SetID
		}
		return a.To < b.To
	})
	sort.Strings(report.Errors)
	return report, nil
}

// handleRebalance runs a rebalance pass and returns its report.
func (rt *Router) handleRebalance(w http.ResponseWriter, r *http.Request) {
	report, err := rt.Rebalance(r.Context())
	if err != nil {
		server.WriteJSON(w, http.StatusServiceUnavailable, routerError{Error: err.Error()})
		return
	}
	server.WriteJSON(w, http.StatusOK, report)
}
