// Package cluster scales multi-model management horizontally: a
// consistent-hash ring places every model set (and, through it, the
// set's CAS chunks) on R of N mmserve nodes, and a stateless router
// fans client operations out to the owners — quorum writes with the
// idempotency journal providing exactly-once across replicas, reads
// served by any live replica with automatic failover, and rebalancing
// after membership changes that moves only the chunk bytes a
// destination is missing (the pull protocol's cache diff doubles as
// the transfer diff).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// hash64 maps a key onto the ring's keyspace: the first 8 bytes of its
// SHA-256, big endian. Cryptographic dispersion keeps vnode points
// uniform without a seeded hash — and therefore stable across
// processes, which ring placement requires.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// DefaultVNodes is the virtual-node count per member. 64 points per
// node keeps the expected load imbalance of a small cluster within a
// few percent while the ring stays tiny (N×64 points).
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the ring owned by a
// member.
type ringPoint struct {
	hash uint64
	node string
}

// ring is an immutable consistent-hash ring. The Table rebuilds one on
// every membership change; lookups walk clockwise from a key's hash
// collecting distinct owners.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  int         // distinct members
}

// buildRing places vnodes points per node. Point k of node n sits at
// hash64(n + "#" + k); collisions across nodes are broken by name so
// the ring is deterministic regardless of insertion order.
func buildRing(nodes []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(nodes)*vnodes), nodes: len(nodes)}
	for _, n := range nodes {
		for k := 0; k < vnodes; k++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(k)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owners returns up to n distinct nodes for key, walking clockwise
// from the key's ring position. The first owner is the key's primary;
// the rest are its replicas. A key's owner sequence only changes for
// keys whose arc a membership change touched — the property that keeps
// rebalances incremental.
func (r *ring) owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.nodes {
		n = r.nodes
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// sequence returns every distinct node in ring order from key's
// position — the owners first, then the rest. Read paths use it as a
// probe order that tries likely holders before long shots.
func (r *ring) sequence(key string) []string {
	return r.owners(key, r.nodes)
}
