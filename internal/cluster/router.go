package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/server"
	"github.com/mmm-go/mmm/internal/version"
)

// Router metric names.
const (
	// MetricRouterSaves counts routed saves by outcome ("ok" made
	// quorum, "quorum_failed" did not).
	MetricRouterSaves = "mmm_router_saves_total"
	// MetricRouterReplicaErrors counts per-node failures seen while
	// fanning out or proxying.
	MetricRouterReplicaErrors = "mmm_router_replica_errors_total"
	// MetricRouterFailovers counts reads that succeeded only after
	// skipping at least one replica.
	MetricRouterFailovers = "mmm_router_read_failovers_total"
	// MetricRouterNodeUp is 1 when the member passed its last probe.
	MetricRouterNodeUp = "mmm_router_node_up"
	// MetricRouterSyncs counts rebalance set-sync operations issued.
	MetricRouterSyncs = "mmm_router_rebalance_syncs_total"
	// MetricRouterSyncBytes counts chunk bytes rebalances moved over
	// the wire (the delta, not the logical set size).
	MetricRouterSyncBytes = "mmm_router_rebalance_bytes_fetched_total"
)

// ReplicasHeader reports a routed save's replication as "acked/owners".
const ReplicasHeader = "X-Mmm-Replicas"

// RouterConfig tunes a Router. Zero values mean: replication factor 2,
// majority write quorum, DefaultVNodes, no request timeout, no body
// cap, 1s Retry-After, strict version preflight.
type RouterConfig struct {
	// Replicas is the replication factor R: how many owners each set
	// has. Min 1; capped by cluster size at lookup time.
	Replicas int
	// WriteQuorum is how many owner acks a save needs (W). 0 means
	// majority: len(owners)/2+1.
	WriteQuorum int
	// VNodes is the virtual-node count per member.
	VNodes int
	// RequestTimeout, MaxBodyBytes, RetryAfter bound routed requests
	// exactly like server.Config bounds local ones (same Gate).
	RequestTimeout time.Duration
	MaxBodyBytes   int64
	RetryAfter     time.Duration
	// AllowMixed skips the version preflight's incompatibility
	// marking — an escape hatch for rolling upgrades, at the cost of
	// the byte-identity guarantees the preflight protects.
	AllowMixed bool
}

// Router is the stateless cluster entry point: it holds no model data,
// only the membership table, and speaks the same HTTP dialect as a
// single mmserve node — clients point server.Client at a router and
// cannot tell the difference, except that their sets now survive node
// loss. Routers are interchangeable: any number can front the same
// membership.
type Router struct {
	table *Table
	cfg   RouterConfig
	reg   *obs.Registry
	mux   *http.ServeMux
	gate  *server.Gate
	httpc *http.Client

	draining atomic.Bool

	// refMu guards ref, the reference VersionInfo adopted from the
	// members at the last preflight (what GET /api/version reports).
	refMu sync.Mutex
	ref   *server.VersionInfo
}

// NewRouter builds a router over an empty membership table; add
// members via Table().Add (or AddMember) and run CheckMembers before
// serving traffic.
func NewRouter(reg *obs.Registry, cfg RouterConfig) *Router {
	if reg == nil {
		reg = obs.Default
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	rt := &Router{
		table: NewTable(cfg.Replicas, cfg.VNodes),
		cfg:   cfg,
		reg:   reg,
		mux:   http.NewServeMux(),
		httpc: &http.Client{Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 64}},
	}
	rt.gate = &server.Gate{
		Registry: reg,
		Config: server.Config{
			RequestTimeout: cfg.RequestTimeout,
			MaxBodyBytes:   cfg.MaxBodyBytes,
			RetryAfter:     cfg.RetryAfter,
		},
		Draining: rt.draining.Load,
		Route: func(r *http.Request) string {
			_, route := rt.mux.Handler(r)
			return route
		},
		Next: rt.mux,
	}
	rt.gate.Describe()
	reg.Describe(MetricRouterSaves, "Routed saves by quorum outcome.")
	reg.Describe(MetricRouterReplicaErrors, "Per-node failures during fan-out or proxying.")
	reg.Describe(MetricRouterFailovers, "Reads that skipped at least one replica before succeeding.")
	reg.Describe(MetricRouterNodeUp, "1 when the member passed its last probe, 0 when down.")
	reg.Describe(MetricRouterSyncs, "Rebalance set-sync operations issued.")
	reg.Describe(MetricRouterSyncBytes, "Chunk bytes moved over the wire by rebalances.")
	rt.routes()
	return rt
}

// Table exposes the membership table for admin tooling and tests.
func (rt *Router) Table() *Table { return rt.table }

// AddMember registers an mmserve node.
func (rt *Router) AddMember(name, url string) error {
	return rt.table.Add(Member{Name: name, URL: strings.TrimRight(url, "/")})
}

// BeginDrain flips the router into drain mode (see Server.BeginDrain);
// it satisfies server.Drainer so ServeListener drains routers too.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// ServeHTTP implements http.Handler through the shared Gate, so routed
// endpoints get the same per-route metrics, body cap, deadline, and
// drain behavior as a node's local ones.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.gate.ServeHTTP(w, r)
}

// client returns a wire client for a member. Stateless by design:
// clients are cheap structs over the shared pooled transport.
func (rt *Router) client(m Member) *server.Client {
	return &server.Client{BaseURL: m.URL, HTTP: rt.httpc, Reg: rt.reg}
}

func (rt *Router) routes() {
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /readyz", rt.handleReady)
	rt.mux.HandleFunc("GET /api/version", rt.handleVersion)
	rt.mux.HandleFunc("GET /api/approaches", rt.handleApproaches)
	rt.mux.HandleFunc("GET /api/{approach}/sets", rt.handleList)
	rt.mux.HandleFunc("POST /api/{approach}/sets", rt.handleSave)
	rt.mux.HandleFunc("GET /api/{approach}/sets/{id}", rt.handleSetProxy)
	rt.mux.HandleFunc("GET /api/{approach}/sets/{id}/params", rt.handleSetProxy)
	rt.mux.HandleFunc("GET /api/cas/recipe/{approach}/{id}", rt.handleRecipe)
	rt.mux.HandleFunc("GET /api/cas/chunk/{hash}", rt.handleChunk)
	rt.mux.HandleFunc("POST /api/{approach}/verify", rt.handleVerify)
	rt.mux.HandleFunc("POST /api/{approach}/prune", rt.handlePrune)
	rt.mux.HandleFunc("POST /api/datasets", rt.handlePutDataset)
	rt.mux.HandleFunc("GET /api/datasets", rt.handleListDatasets)
	rt.mux.HandleFunc("POST /api/fsck", rt.handleFsck)
	rt.mux.HandleFunc("GET /api/du", rt.handleDu)
	rt.mux.HandleFunc("GET /api/cluster/status", rt.handleStatus)
	rt.mux.HandleFunc("POST /api/cluster/rebalance", rt.handleRebalance)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.reg.WritePrometheus(w)
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	if rt.draining.Load() {
		server.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	// A router with no usable member cannot serve anything.
	if len(rt.usable()) == 0 {
		server.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no usable members"})
		return
	}
	server.WriteJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleVersion reports the cluster's identity: the router's build
// stamp plus the codec/dedup policy adopted from the members at the
// last preflight, so a client's codec assertion works against a router
// exactly as against a node.
func (rt *Router) handleVersion(w http.ResponseWriter, _ *http.Request) {
	rt.refMu.Lock()
	ref := rt.ref
	rt.refMu.Unlock()
	out := server.VersionInfo{Version: version.Version, Codec: "none"}
	if ref != nil {
		out.Codec, out.Dedup, out.Approaches = ref.Codec, ref.Dedup, ref.Approaches
	}
	server.WriteJSON(w, http.StatusOK, out)
}

func (rt *Router) handleStatus(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, http.StatusOK, map[string]any{
		"members":      rt.table.Members(),
		"replicas":     rt.table.Replicas(),
		"write_quorum": rt.quorum(rt.table.Replicas()),
	})
}

// usable lists the members the router may route to right now.
func (rt *Router) usable() []Member {
	var out []Member
	for _, ms := range rt.table.Members() {
		if !ms.Down && ms.Incompatible == "" {
			out = append(out, ms.Member)
		}
	}
	return out
}

// quorum is the ack count a save over n owners needs.
func (rt *Router) quorum(n int) int {
	if rt.cfg.WriteQuorum > 0 {
		if rt.cfg.WriteQuorum < n {
			return rt.cfg.WriteQuorum
		}
		return n
	}
	return n/2 + 1
}

// noteNodeError records a failed call to a member and marks it down so
// subsequent reads skip it until a probe brings it back.
func (rt *Router) noteNodeError(m Member) {
	rt.reg.Counter(MetricRouterReplicaErrors, obs.L("node", m.Name)).Inc()
	rt.table.SetDown(m.Name, true)
	rt.reg.Gauge(MetricRouterNodeUp, obs.L("node", m.Name)).Set(0)
}

// ---- write path -----------------------------------------------------

// routerError mirrors the server's JSON error envelope for the few
// spots where the router authors errors itself.
type routerError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// bodyStatus maps a body-read failure: 413 when the Gate's cap
// triggered, 400 otherwise.
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) || strings.Contains(err.Error(), "request body too large") {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// peekManifest extracts the manifest part from a buffered multipart
// save body without consuming it — the router needs the base set (for
// placement) and any explicit ID before fanning the same bytes out.
func peekManifest(contentType string, body []byte) (*server.Manifest, error) {
	mediaType, params, err := mime.ParseMediaType(contentType)
	if err != nil || !strings.HasPrefix(mediaType, "multipart/") {
		return nil, fmt.Errorf("cluster: expected multipart save body, got %q", contentType)
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: reading save body: %w", err)
		}
		if part.FormName() == "manifest" {
			m := &server.Manifest{}
			if err := json.NewDecoder(io.LimitReader(part, 1<<24)).Decode(m); err != nil {
				return nil, fmt.Errorf("cluster: parsing manifest: %w", err)
			}
			return m, nil
		}
	}
	return nil, fmt.Errorf("cluster: save body has no manifest part")
}

// freshKey mints an idempotency key for clients that sent none: the
// router needs one to derive the replicated set ID and to make its own
// fan-out retries exactly-once.
func freshKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the process is unusable
	}
	return "router-" + hex.EncodeToString(b[:])
}

// handleSave fans a save out to all R owners of the minted set ID and
// acks once W of them committed. Every replica executes under the same
// idempotency key and explicit set ID, so the save lands exactly once
// per node under one cluster-wide name no matter how often the client
// or the router retries.
func (rt *Router) handleSave(w http.ResponseWriter, r *http.Request) {
	approach := r.PathValue("approach")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		server.WriteJSON(w, bodyStatus(err), routerError{Error: err.Error()})
		return
	}
	manifest, err := peekManifest(r.Header.Get("Content-Type"), body)
	if err != nil {
		server.WriteJSON(w, http.StatusBadRequest, routerError{Error: err.Error()})
		return
	}
	key := r.Header.Get(server.IdempotencyKeyHeader)
	if key == "" {
		key = freshKey()
	}
	setID := r.Header.Get(server.SetIDHeader)
	if setID == "" {
		setID = manifest.SetID
	}
	if setID == "" {
		setID = MintID(key, manifest.Base)
	}
	if err := core.ValidateSetID(setID); err != nil {
		server.WriteJSON(w, http.StatusBadRequest, routerError{Error: err.Error()})
		return
	}

	owners := rt.table.Owners(PlacementKey(setID))
	if len(owners) == 0 {
		server.WriteJSON(w, http.StatusServiceUnavailable, routerError{Error: "cluster has no members"})
		return
	}
	quorum := rt.quorum(len(owners))

	type ack struct {
		res core.SaveResult
		err error
	}
	acks := make([]ack, len(owners))
	var wg sync.WaitGroup
	for i, m := range owners {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			acks[i].res, acks[i].err = rt.saveOn(r, m, approach, key, setID, body)
			if acks[i].err != nil {
				rt.noteNodeError(m)
			}
		}(i, m)
	}
	wg.Wait()

	var got int
	var first *core.SaveResult
	var failures []string
	for i := range acks {
		if acks[i].err == nil {
			got++
			if first == nil {
				first = &acks[i].res
			}
		} else {
			failures = append(failures, fmt.Sprintf("%s: %v", owners[i].Name, acks[i].err))
		}
	}
	if got < quorum {
		rt.reg.Counter(MetricRouterSaves, obs.L("outcome", "quorum_failed")).Inc()
		w.Header().Set("Retry-After", "1")
		server.WriteJSON(w, http.StatusServiceUnavailable, routerError{
			Error: fmt.Sprintf("save %s/%s reached %d of %d required replicas (owners %d): %s",
				approach, setID, got, quorum, len(owners), strings.Join(failures, "; ")),
		})
		return
	}
	rt.reg.Counter(MetricRouterSaves, obs.L("outcome", "ok")).Inc()
	w.Header().Set(ReplicasHeader, fmt.Sprintf("%d/%d", got, len(owners)))
	server.WriteJSON(w, http.StatusCreated, first)
}

// saveOn replays the buffered save body onto one owner. A set_exists
// conflict counts as success: the replica already holds this exact
// logical save under the minted ID (the journal entry was lost but the
// data was not).
func (rt *Router) saveOn(r *http.Request, m Member, approach, key, setID string, body []byte) (core.SaveResult, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		m.URL+"/api/"+approach+"/sets", bytes.NewReader(body))
	if err != nil {
		return core.SaveResult{}, err
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	req.Header.Set(server.IdempotencyKeyHeader, key)
	req.Header.Set(server.SetIDHeader, setID)
	resp, err := rt.httpc.Do(req)
	if err != nil {
		return core.SaveResult{}, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusCreated:
		var res core.SaveResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return core.SaveResult{}, fmt.Errorf("decoding save result: %w", err)
		}
		return res, nil
	case resp.StatusCode == http.StatusConflict:
		var e routerError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Code == "set_exists" {
			return core.SaveResult{SetID: setID}, nil
		}
		return core.SaveResult{}, fmt.Errorf("HTTP 409: %s", e.Error)
	default:
		var e routerError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Error == "" {
			e.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
		}
		return core.SaveResult{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
	}
}

// ---- read path ------------------------------------------------------

// candidates orders members for a read: usable owners and successors
// first (ring order from the key), then down-marked members as a last
// resort — a stale down mark must not make data unreachable.
// Incompatible members are never used.
func (rt *Router) candidates(key string) []Member {
	seq := rt.table.Sequence(key)
	usable := make([]Member, 0, len(seq))
	var lastResort []Member
	for _, m := range seq {
		if rt.table.Usable(m.Name) {
			usable = append(usable, m)
		} else {
			for _, ms := range rt.table.Members() {
				if ms.Name == m.Name && ms.Incompatible == "" {
					lastResort = append(lastResort, m)
				}
			}
		}
	}
	return append(usable, lastResort...)
}

// proxyGet forwards a GET to the first candidate that answers it,
// streaming the response through. 404s and 5xx failover to the next
// candidate (this replica may be missing a set its peers hold); other
// statuses are authoritative. A body that dies mid-stream aborts the
// client connection so the truncation is never mistaken for success.
func (rt *Router) proxyGet(w http.ResponseWriter, r *http.Request, members []Member) {
	if len(members) == 0 {
		server.WriteJSON(w, http.StatusServiceUnavailable, routerError{Error: "cluster has no usable members"})
		return
	}
	var lastStatus int
	var lastBody []byte
	var lastType string
	for i, m := range members {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, m.URL+r.URL.RequestURI(), nil)
		if err != nil {
			server.WriteJSON(w, http.StatusInternalServerError, routerError{Error: err.Error()})
			return
		}
		for _, h := range []string{"Range", "If-Range", "Accept"} {
			if v := r.Header.Get(h); v != "" {
				req.Header.Set(h, v)
			}
		}
		resp, err := rt.httpc.Do(req)
		if err != nil {
			rt.noteNodeError(m)
			continue
		}
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode >= 500 {
			// Remember the most recent refusal: if every candidate
			// misses, the client deserves the envelope (set_not_found
			// etc.), not a synthetic error.
			lastStatus = resp.StatusCode
			lastType = resp.Header.Get("Content-Type")
			lastBody, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				rt.noteNodeError(m)
			}
			continue
		}
		if i > 0 {
			rt.reg.Counter(MetricRouterFailovers).Inc()
		}
		for _, h := range []string{"Content-Type", "Content-Length", "Content-Range", "Accept-Ranges", "ETag"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			resp.Body.Close()
			panic(http.ErrAbortHandler)
		}
		resp.Body.Close()
		return
	}
	if lastStatus != 0 {
		if lastType != "" {
			w.Header().Set("Content-Type", lastType)
		}
		w.WriteHeader(lastStatus)
		_, _ = w.Write(lastBody)
		return
	}
	server.WriteJSON(w, http.StatusBadGateway, routerError{Error: "no replica answered"})
}

func (rt *Router) handleSetProxy(w http.ResponseWriter, r *http.Request) {
	rt.proxyGet(w, r, rt.candidates(PlacementKey(r.PathValue("id"))))
}

func (rt *Router) handleRecipe(w http.ResponseWriter, r *http.Request) {
	rt.proxyGet(w, r, rt.candidates(PlacementKey(r.PathValue("id"))))
}

// handleChunk probes for a chunk across the cluster. A chunk lives
// wherever the sets referencing it live, which the hash alone cannot
// reveal — so the probe order is simply ring order from the hash
// (deterministic, spreads load) over every member, failing over on
// 404.
func (rt *Router) handleChunk(w http.ResponseWriter, r *http.Request) {
	rt.proxyGet(w, r, rt.candidates(r.PathValue("hash")))
}

func (rt *Router) handleApproaches(w http.ResponseWriter, r *http.Request) {
	rt.proxyGet(w, r, rt.usable())
}

// ---- fan-out reads --------------------------------------------------

// fanout runs fn against every usable member concurrently and returns
// the per-member results. Member errors are collected, not fatal —
// merge handlers decide how much of the cluster must answer.
func (rt *Router) fanout(ctx context.Context, fn func(ctx context.Context, m Member) (any, error)) (oks map[string]any, errs map[string]error) {
	members := rt.usable()
	oks = make(map[string]any, len(members))
	errs = map[string]error{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			v, err := fn(ctx, m)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[m.Name] = err
			} else {
				oks[m.Name] = v
			}
		}(m)
	}
	wg.Wait()
	for name, err := range errs {
		for _, m := range members {
			if m.Name == name {
				rt.noteNodeError(m)
			}
		}
		_ = err
	}
	return oks, errs
}

// fanoutErr formats per-member failures.
func fanoutErr(errs map[string]error) string {
	parts := make([]string, 0, len(errs))
	for name, err := range errs {
		parts = append(parts, fmt.Sprintf("%s: %v", name, err))
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}

// handleList unions the set listings of every usable member: with
// R < N each node holds a subset, and the union is the cluster's
// catalog. Any member answering is enough — missing members can only
// hide sets, and their sets are (quorum permitting) replicated
// elsewhere anyway.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	approach := r.PathValue("approach")
	oks, errs := rt.fanout(r.Context(), func(ctx context.Context, m Member) (any, error) {
		return rt.client(m).List(ctx, approach)
	})
	if len(oks) == 0 {
		server.WriteJSON(w, http.StatusBadGateway, routerError{Error: "no member answered: " + fanoutErr(errs)})
		return
	}
	seen := map[string]bool{}
	out := []string{}
	for _, v := range oks {
		for _, id := range v.([]string) {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	server.WriteJSON(w, http.StatusOK, out)
}

func (rt *Router) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	oks, errs := rt.fanout(r.Context(), func(ctx context.Context, m Member) (any, error) {
		return rt.client(m).Datasets(ctx)
	})
	if len(oks) == 0 {
		server.WriteJSON(w, http.StatusBadGateway, routerError{Error: "no member answered: " + fanoutErr(errs)})
		return
	}
	seen := map[string]bool{}
	out := []string{}
	for _, v := range oks {
		for _, id := range v.([]string) {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	server.WriteJSON(w, http.StatusOK, out)
}

// handlePutDataset registers a dataset on every usable member —
// dataset specs are tiny reference data every replica needs (a
// provenance save validates against the local registry), so they are
// replicated everywhere rather than sharded, and registration demands
// unanimity among usable members.
func (rt *Router) handlePutDataset(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		server.WriteJSON(w, bodyStatus(err), routerError{Error: err.Error()})
		return
	}
	var id string
	var mu sync.Mutex
	oks, errs := rt.fanout(r.Context(), func(ctx context.Context, m Member) (any, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.URL+"/api/datasets", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.httpc.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			var e routerError
			_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
			return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
		}
		var out map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		mu.Lock()
		id = out["id"]
		mu.Unlock()
		return out, nil
	})
	if len(errs) > 0 || len(oks) == 0 {
		server.WriteJSON(w, http.StatusBadGateway,
			routerError{Error: "dataset registration incomplete: " + fanoutErr(errs)})
		return
	}
	server.WriteJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// handleVerify fans the integrity check to every usable member and
// concatenates the findings, each tagged with the node that reported
// it.
func (rt *Router) handleVerify(w http.ResponseWriter, r *http.Request) {
	approach := r.PathValue("approach")
	oks, errs := rt.fanout(r.Context(), func(ctx context.Context, m Member) (any, error) {
		return rt.client(m).Verify(ctx, approach)
	})
	if len(oks) == 0 {
		server.WriteJSON(w, http.StatusBadGateway, routerError{Error: "no member answered: " + fanoutErr(errs)})
		return
	}
	out := []core.Issue{}
	for name, v := range oks {
		for _, is := range v.([]core.Issue) {
			is.Problem = "[" + name + "] " + is.Problem
			out = append(out, is)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SetID != out[j].SetID {
			return out[i].SetID < out[j].SetID
		}
		return out[i].Problem < out[j].Problem
	})
	server.WriteJSON(w, http.StatusOK, out)
}

// handlePrune fans the prune to every usable member (each node prunes
// its own replicas; the keep-closure is computed locally) and merges:
// union of kept and deleted IDs, summed freed bytes. Pruning with a
// member down is refused — the downed node would resurrect pruned
// sets' placement on rejoin without its own prune.
func (rt *Router) handlePrune(w http.ResponseWriter, r *http.Request) {
	approach := r.PathValue("approach")
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		server.WriteJSON(w, bodyStatus(err), routerError{Error: err.Error()})
		return
	}
	var keep struct {
		Keep []string `json:"keep"`
	}
	if err := json.Unmarshal(body, &keep); err != nil {
		server.WriteJSON(w, http.StatusBadRequest, routerError{Error: err.Error()})
		return
	}
	for _, ms := range rt.table.Members() {
		if ms.Down {
			server.WriteJSON(w, http.StatusServiceUnavailable, routerError{
				Error: fmt.Sprintf("member %s is down; pruning with absent replicas would diverge on rejoin", ms.Name)})
			return
		}
	}
	oks, errs := rt.fanout(r.Context(), func(ctx context.Context, m Member) (any, error) {
		return rt.client(m).Prune(ctx, approach, keep.Keep)
	})
	if len(errs) > 0 || len(oks) == 0 {
		server.WriteJSON(w, http.StatusBadGateway, routerError{Error: "prune incomplete: " + fanoutErr(errs)})
		return
	}
	merged := core.PruneReport{}
	keptSeen, delSeen := map[string]bool{}, map[string]bool{}
	for _, v := range oks {
		rep := v.(*core.PruneReport)
		for _, id := range rep.Kept {
			if !keptSeen[id] {
				keptSeen[id] = true
				merged.Kept = append(merged.Kept, id)
			}
		}
		for _, id := range rep.Deleted {
			if !delSeen[id] {
				delSeen[id] = true
				merged.Deleted = append(merged.Deleted, id)
			}
		}
		merged.FreedBytes += rep.FreedBytes
	}
	sort.Strings(merged.Kept)
	sort.Strings(merged.Deleted)
	server.WriteJSON(w, http.StatusOK, merged)
}

// handleFsck fans the store-wide check to every usable member; counts
// are summed, issues concatenated with their node tagged into the
// problem text.
func (rt *Router) handleFsck(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	repair := false
	if len(body) > 0 {
		var req struct {
			Repair bool `json:"repair"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			server.WriteJSON(w, http.StatusBadRequest, routerError{Error: err.Error()})
			return
		}
		repair = req.Repair
	}
	oks, errs := rt.fanout(r.Context(), func(ctx context.Context, m Member) (any, error) {
		return rt.client(m).Fsck(ctx, repair)
	})
	if len(oks) == 0 {
		server.WriteJSON(w, http.StatusBadGateway, routerError{Error: "no member answered: " + fanoutErr(errs)})
		return
	}
	merged := core.FsckReport{}
	for name, v := range oks {
		rep := v.(*core.FsckReport)
		merged.Sets += rep.Sets
		merged.BytesVerified += rep.BytesVerified
		for _, is := range rep.Issues {
			is.Problem = "[" + name + "] " + is.Problem
			merged.Issues = append(merged.Issues, is)
		}
	}
	sort.Slice(merged.Issues, func(i, j int) bool {
		return merged.Issues[i].Problem < merged.Issues[j].Problem
	})
	server.WriteJSON(w, http.StatusOK, merged)
}

// handleDu sums storage occupancy across usable members. Per-set rows
// are omitted: each set appears on R nodes and per-replica rows would
// double-count without an aggregation story; the totals are the
// cluster's real disk footprint.
func (rt *Router) handleDu(w http.ResponseWriter, r *http.Request) {
	oks, errs := rt.fanout(r.Context(), func(ctx context.Context, m Member) (any, error) {
		return rt.client(m).Du(ctx)
	})
	if len(oks) == 0 {
		server.WriteJSON(w, http.StatusBadGateway, routerError{Error: "no member answered: " + fanoutErr(errs)})
		return
	}
	merged := core.DuReport{Sets: []core.DuSet{}}
	for _, v := range oks {
		rep := v.(*core.DuReport)
		merged.LogicalBytes += rep.LogicalBytes
		merged.PhysicalBytes += rep.PhysicalBytes
		merged.RawBytes += rep.RawBytes
		merged.ChunkBytes += rep.ChunkBytes
		merged.RecipeBytes += rep.RecipeBytes
		merged.Chunks += rep.Chunks
		merged.QuarantinedCount += rep.QuarantinedCount
		merged.QuarantinedBytes += rep.QuarantinedBytes
	}
	if merged.PhysicalBytes > 0 {
		merged.DedupRatioPercent = merged.LogicalBytes * 100 / merged.PhysicalBytes
	}
	server.WriteJSON(w, http.StatusOK, merged)
}

// ---- membership health ----------------------------------------------

// CheckMembers is the version preflight: every member must run the
// same build with the same storage policy (codec, dedup) as every
// other — and as this router — or replicas of one set would disagree
// byte-for-byte. Incompatible members are marked and never routed to;
// unreachable members are marked down. AllowMixed downgrades the
// marking to log-only.
func (rt *Router) CheckMembers(ctx context.Context) ([]MemberStatus, error) {
	members := rt.table.Members()
	type res struct {
		name string
		info server.VersionInfo
		err  error
	}
	out := make([]res, len(members))
	var wg sync.WaitGroup
	for i, ms := range members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			out[i].name = m.Name
			out[i].info, out[i].err = rt.client(m).Version(ctx)
		}(i, ms.Member)
	}
	wg.Wait()

	// Adopt the first reachable member (by name order) as the policy
	// reference.
	var ref *server.VersionInfo
	for i := range out {
		if out[i].err == nil {
			ref = &out[i].info
			break
		}
	}
	for i := range out {
		name := out[i].name
		if out[i].err != nil {
			rt.table.SetDown(name, true)
			rt.reg.Gauge(MetricRouterNodeUp, obs.L("node", name)).Set(0)
			continue
		}
		rt.table.SetDown(name, false)
		rt.reg.Gauge(MetricRouterNodeUp, obs.L("node", name)).Set(1)
		reason := ""
		if out[i].info.Version != version.Version {
			reason = fmt.Sprintf("node runs %s, router runs %s", out[i].info.Version, version.Version)
		} else if ref != nil && !ref.Compatible(out[i].info) {
			reason = fmt.Sprintf("storage policy mismatch: node codec=%s dedup=%v, cluster codec=%s dedup=%v",
				out[i].info.Codec, out[i].info.Dedup, ref.Codec, ref.Dedup)
		}
		if rt.cfg.AllowMixed {
			reason = ""
		}
		rt.table.SetIncompatible(name, reason)
	}
	if ref != nil {
		rt.refMu.Lock()
		rt.ref = ref
		rt.refMu.Unlock()
	}
	statuses := rt.table.Members()
	if ref == nil && len(members) > 0 {
		return statuses, fmt.Errorf("cluster: no member reachable for version preflight")
	}
	for _, ms := range statuses {
		if ms.Incompatible != "" {
			return statuses, fmt.Errorf("cluster: member %s refused: %s", ms.Name, ms.Incompatible)
		}
	}
	return statuses, nil
}

// Probe checks every member's health once, flipping down marks (and
// the node_up gauge) accordingly. Recovered nodes become routable
// again here — passive error marking only ever takes nodes out.
func (rt *Router) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ms := range rt.table.Members() {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			err := rt.client(m).Health(ctx)
			rt.table.SetDown(m.Name, err != nil)
			up := int64(1)
			if err != nil {
				up = 0
			}
			rt.reg.Gauge(MetricRouterNodeUp, obs.L("node", m.Name)).Set(up)
		}(ms.Member)
	}
	wg.Wait()
}

// StartProbing runs Probe every interval until ctx is canceled.
func (rt *Router) StartProbing(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				probeCtx, cancel := context.WithTimeout(ctx, interval)
				rt.Probe(probeCtx)
				cancel()
			}
		}
	}()
}
