package cluster

import (
	"fmt"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/core"
)

func threeNodeTable(t *testing.T, replicas int) *Table {
	t.Helper()
	tb := NewTable(replicas, 0)
	for _, m := range []Member{
		{Name: "node-a", URL: "http://a"},
		{Name: "node-b", URL: "http://b"},
		{Name: "node-c", URL: "http://c"},
	} {
		if err := tb.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestOwnersDistinctAndDeterministic(t *testing.T) {
	tb := threeNodeTable(t, 2)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("set-%d", i)
		owners := tb.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("key %q: %d owners, want 2", key, len(owners))
		}
		if owners[0].Name == owners[1].Name {
			t.Fatalf("key %q: duplicate owner %q", key, owners[0].Name)
		}
		again := tb.Owners(key)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("key %q: owners not deterministic", key)
		}
	}
}

func TestOwnersSpreadAcrossMembers(t *testing.T) {
	tb := threeNodeTable(t, 2)
	counts := map[string]int{}
	for i := 0; i < 600; i++ {
		for _, m := range tb.Owners(fmt.Sprintf("spread-%d", i)) {
			counts[m.Name]++
		}
	}
	for _, name := range []string{"node-a", "node-b", "node-c"} {
		// 600 keys × 2 replicas over 3 nodes → ~400 each; require a
		// loose band, this guards against degenerate placement, not
		// perfect balance.
		if counts[name] < 200 || counts[name] > 600 {
			t.Fatalf("member %s owns %d replicas of 1200, badly unbalanced: %v",
				name, counts[name], counts)
		}
	}
}

// TestMembershipChangeMovesFewKeys is the consistent-hashing property:
// adding a fourth node must not reshuffle placement wholesale.
func TestMembershipChangeMovesFewKeys(t *testing.T) {
	tb := threeNodeTable(t, 2)
	before := map[string][]Member{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("churn-%d", i)
		before[key] = tb.Owners(key)
	}
	if err := tb.Add(Member{Name: "node-d", URL: "http://d"}); err != nil {
		t.Fatal(err)
	}
	movedReplicas := 0
	for key, old := range before {
		now := tb.Owners(key)
		oldSet := map[string]bool{}
		for _, m := range old {
			oldSet[m.Name] = true
		}
		for _, m := range now {
			if !oldSet[m.Name] {
				movedReplicas++
			}
		}
	}
	// 1000 replica slots over 4 nodes: the newcomer should take roughly
	// its fair share (~250), nowhere near a full reshuffle.
	if movedReplicas > 500 {
		t.Fatalf("adding one node moved %d of 1000 replica slots", movedReplicas)
	}
	if movedReplicas == 0 {
		t.Fatal("adding a node moved nothing — ring is not rebalancing at all")
	}

	// Removing it restores the original placement exactly.
	tb.Remove("node-d")
	for key, old := range before {
		now := tb.Owners(key)
		for i := range old {
			if now[i] != old[i] {
				t.Fatalf("key %q: placement changed after add+remove round-trip", key)
			}
		}
	}
}

func TestOwnersClampedToMembership(t *testing.T) {
	tb := NewTable(3, 0)
	if got := tb.Owners("anything"); len(got) != 0 {
		t.Fatalf("empty table returned owners: %v", got)
	}
	if err := tb.Add(Member{Name: "only", URL: "http://only"}); err != nil {
		t.Fatal(err)
	}
	owners := tb.Owners("anything")
	if len(owners) != 1 || owners[0].Name != "only" {
		t.Fatalf("R=3 with one member: owners = %v", owners)
	}
}

func TestSequenceCoversAllMembers(t *testing.T) {
	tb := threeNodeTable(t, 2)
	seq := tb.Sequence("some-chunk-hash")
	if len(seq) != 3 {
		t.Fatalf("sequence length %d, want 3", len(seq))
	}
	seen := map[string]bool{}
	for _, m := range seq {
		seen[m.Name] = true
	}
	if len(seen) != 3 {
		t.Fatalf("sequence repeats members: %v", seq)
	}
	// The first element of the sequence is the primary owner.
	if seq[0] != tb.Owners("some-chunk-hash")[0] {
		t.Fatal("sequence does not start at the primary owner")
	}
}

func TestDownMembersStillOwn(t *testing.T) {
	tb := threeNodeTable(t, 2)
	tb.SetDown("node-a", true)
	sawA := false
	for i := 0; i < 100; i++ {
		for _, m := range tb.Owners(fmt.Sprintf("down-%d", i)) {
			if m.Name == "node-a" {
				sawA = true
			}
		}
	}
	// Health must not change placement: a down node still owns its
	// ranges (the router works around it at request time).
	if !sawA {
		t.Fatal("down member vanished from placement")
	}
	if got := countUsable(tb); got != 2 {
		t.Fatalf("usable members = %d, want 2", got)
	}
	tb.SetIncompatible("node-b", "version skew")
	if got := countUsable(tb); got != 1 {
		t.Fatalf("usable with one down one incompatible = %d, want 1", got)
	}
}

func countUsable(tb *Table) int {
	n := 0
	for _, ms := range tb.Members() {
		if tb.Usable(ms.Name) {
			n++
		}
	}
	return n
}

func TestMintIDAndPlacementKeyColocate(t *testing.T) {
	root := MintID("router-abc123", "")
	if err := core.ValidateSetID(root); err != nil {
		t.Fatalf("minted root ID %q invalid: %v", root, err)
	}
	if !strings.HasPrefix(root, "r-g") {
		t.Fatalf("root ID = %q, want r-g<hex> form", root)
	}
	// Deterministic: same idempotency key, same ID — that is what makes
	// cross-replica retries converge on one set.
	if again := MintID("router-abc123", ""); again != root {
		t.Fatalf("MintID not deterministic: %q vs %q", again, root)
	}
	if other := MintID("router-zzz999", ""); other == root {
		t.Fatal("different keys minted the same ID")
	}

	derived := MintID("router-def456", root)
	if err := core.ValidateSetID(derived); err != nil {
		t.Fatalf("derived ID %q invalid: %v", derived, err)
	}
	if !strings.HasPrefix(derived, root+"-d") {
		t.Fatalf("derived ID %q does not extend base %q", derived, root)
	}

	// Root and derived share a placement key → same owners → lineage
	// recovery never crosses nodes.
	if PlacementKey(root) != PlacementKey(derived) {
		t.Fatalf("lineage split across placement groups: %q vs %q",
			PlacementKey(root), PlacementKey(derived))
	}
	grand := MintID("router-ghi789", derived)
	if PlacementKey(grand) != PlacementKey(root) {
		t.Fatal("grandchild left the placement group")
	}

	// Foreign IDs (no group token) still get a stable key.
	if PlacementKey("some-external-set") != PlacementKey("some-external-set") {
		t.Fatal("PlacementKey unstable for plain IDs")
	}
	if PlacementKey("some-external-set") == PlacementKey("other-set") {
		t.Fatal("distinct plain IDs collided")
	}
}
