package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/netchaos"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/server"
)

// testNode is one in-process mmserve node behind a NodeGate, so tests
// can kill or partition it mid-workload.
type testNode struct {
	name   string
	url    string
	stores core.Stores
	gate   *netchaos.NodeGate
	client *server.Client
}

// testCluster is N nodes plus a router, all over real HTTP.
type testCluster struct {
	rt     *Router
	reg    *obs.Registry
	client *server.Client // pointed at the router
	url    string
	nodes  []*testNode
}

func startNode(t *testing.T, name string, cfg server.Config) *testNode {
	t.Helper()
	stores := core.NewMemStores()
	api := server.NewWithConfig(stores, obs.New(), cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gate := netchaos.NewNodeGate(ln)
	hs := &http.Server{Handler: api}
	go func() { _ = hs.Serve(gate) }()
	t.Cleanup(func() { _ = hs.Close() })
	url := "http://" + ln.Addr().String()
	return &testNode{
		name:   name,
		url:    url,
		stores: stores,
		gate:   gate,
		client: &server.Client{BaseURL: url},
	}
}

// newCluster builds n nodes with dedup on (the cluster's home
// configuration: rebalances move only missing chunks) behind a router
// with replication factor r.
func newCluster(t *testing.T, n, r int, cfg RouterConfig) *testCluster {
	t.Helper()
	cfg.Replicas = r
	reg := obs.New()
	rt := NewRouter(reg, cfg)
	tc := &testCluster{rt: rt, reg: reg}
	for i := 0; i < n; i++ {
		node := startNode(t, fmt.Sprintf("node-%c", 'a'+i), server.Config{Dedup: true})
		tc.nodes = append(tc.nodes, node)
		if err := rt.AddMember(node.name, node.url); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.CheckMembers(context.Background()); err != nil {
		t.Fatalf("version preflight: %v", err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	tc.url = ts.URL
	tc.client = &server.Client{BaseURL: ts.URL}
	return tc
}

func clusterSet(t *testing.T, seed uint64) *core.ModelSet {
	t.Helper()
	set, err := core.NewModelSet(nn.FFNN("cluster-test", 8, []int{12}, 2), 6, seed)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// holders returns which nodes hold a set, by direct (router-bypassing)
// listing.
func holders(t *testing.T, tc *testCluster, approach, setID string) []string {
	t.Helper()
	var out []string
	for _, n := range tc.nodes {
		if !tc.rt.Table().Usable(n.name) {
			continue
		}
		ids, err := n.client.List(context.Background(), approach)
		if err != nil {
			t.Fatalf("listing %s: %v", n.name, err)
		}
		for _, id := range ids {
			if id == setID {
				out = append(out, n.name)
			}
		}
	}
	return out
}

// TestClusterSaveReplicatesAndSurvivesNodeKill is the headline
// guarantee: every set lands on R nodes, and killing any one node
// mid-workload leaves every set byte-identically recoverable through
// the router.
func TestClusterSaveReplicatesAndSurvivesNodeKill(t *testing.T) {
	ctx := context.Background()
	tc := newCluster(t, 3, 2, RouterConfig{})

	const sets = 12
	saved := map[string]*core.ModelSet{}
	for i := 0; i < sets; i++ {
		set := clusterSet(t, uint64(100+i))
		res, err := tc.client.Save(ctx, "baseline", set, "", nil, nil)
		if err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		saved[res.SetID] = set
	}

	// Replication invariant: every set is on exactly R=2 nodes.
	killedOwners := map[string]bool{}
	for id := range saved {
		h := holders(t, tc, "baseline", id)
		if len(h) != 2 {
			t.Fatalf("set %s on %v, want exactly 2 nodes", id, h)
		}
		for _, name := range h {
			if name == tc.nodes[1].name {
				killedOwners[id] = true
			}
		}
	}
	if len(killedOwners) == 0 {
		t.Fatal("node-b owns nothing; test would not exercise failover")
	}

	// Kill node-b: listener closed, live connections severed.
	tc.nodes[1].gate.Kill()
	tc.rt.Probe(ctx)
	if tc.rt.Table().Usable(tc.nodes[1].name) {
		t.Fatal("killed node still marked usable after probe")
	}

	// Every set — including those node-b owned — recovers through the
	// router byte-identically from the surviving replica.
	for id, want := range saved {
		got, err := tc.client.Recover(ctx, "baseline", id)
		if err != nil {
			t.Fatalf("recover %s after kill: %v", id, err)
		}
		if !want.Equal(got) {
			t.Fatalf("set %s differs after node kill", id)
		}
	}

	// Operator removes the dead node; rebalance restores R=2 on the
	// survivors.
	tc.rt.Table().Remove(tc.nodes[1].name)
	rep, err := tc.rt.Rebalance(ctx)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if rep.Unplaceable != 0 {
		t.Fatalf("rebalance left %d sets unplaceable: %+v", rep.Unplaceable, rep.Errors)
	}
	if rep.Synced == 0 {
		t.Fatal("rebalance synced nothing, but node-b held replicas")
	}
	for id, want := range saved {
		h := holders(t, tc, "baseline", id)
		if len(h) != 2 {
			t.Fatalf("set %s on %v after rebalance, want both survivors", id, h)
		}
		got, err := tc.client.Recover(ctx, "baseline", id)
		if err != nil || !want.Equal(got) {
			t.Fatalf("set %s not byte-identical after rebalance (err=%v)", id, err)
		}
	}

	// Both survivors pass fsck — replication debt was paid with
	// committed sets, not debris.
	for _, n := range []*testNode{tc.nodes[0], tc.nodes[2]} {
		fr, err := n.client.Fsck(ctx, false)
		if err != nil {
			t.Fatalf("fsck %s: %v", n.name, err)
		}
		if !fr.Clean() {
			t.Fatalf("fsck %s: %+v", n.name, fr.Issues)
		}
	}

	// Writes work again now that membership matches reality.
	if _, err := tc.client.Save(ctx, "baseline", clusterSet(t, 999), "", nil, nil); err != nil {
		t.Fatalf("save after membership fix: %v", err)
	}
}

func TestClusterReadFailoverDuringPartition(t *testing.T) {
	ctx := context.Background()
	tc := newCluster(t, 3, 2, RouterConfig{})

	set := clusterSet(t, 7)
	res, err := tc.client.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Partition each node in turn: R=2 means at most one owner is
	// gone, so the read must succeed every time.
	for _, n := range tc.nodes {
		n.gate.Partition()
		got, err := tc.client.Recover(ctx, "baseline", res.SetID)
		if err != nil {
			t.Fatalf("recover with %s partitioned: %v", n.name, err)
		}
		if !set.Equal(got) {
			t.Fatalf("recover with %s partitioned: bytes differ", n.name)
		}
		n.gate.Heal()
		tc.rt.Probe(ctx)
	}
}

// TestRouterGateMetricsAndBodyCap is the satellite-2 regression:
// routed endpoints sit behind the same Gate as local ones, so the
// router's /metrics must expose per-route HTTP series and the body cap
// must 413 oversized uploads before they fan out.
func TestRouterGateMetricsAndBodyCap(t *testing.T) {
	ctx := context.Background()
	tc := newCluster(t, 3, 2, RouterConfig{MaxBodyBytes: 16 << 10})

	set := clusterSet(t, 42)
	res, err := tc.client.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Recover(ctx, "baseline", res.SetID); err != nil {
		t.Fatal(err)
	}

	// Oversized body dies at the router's gate with 413.
	resp, err := http.Post(tc.url+"/api/baseline/sets", "application/json",
		bytes.NewReader(make([]byte, 64<<10)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized save through router: status %d, want 413", resp.StatusCode)
	}

	text, err := tc.client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`mmm_http_requests_total{`,                     // per-route middleware ran
		`route="POST /api/{approach}/sets"`,            // routed save has its own series
		`route="GET /api/cas/recipe/{approach}/{id}"`,  // and the proxied pull-read
		`mmm_http_request_seconds`,                     // latency histogram present
		`mmm_router_saves_total{outcome="ok"}`,         // router-specific series
		`mmm_router_node_up{`,                          // probe gauge registered
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("router /metrics missing %q\n---\n%s", want, text)
		}
	}
}

func TestVersionPreflightRefusesMixedPolicy(t *testing.T) {
	ctx := context.Background()
	reg := obs.New()
	rt := NewRouter(reg, RouterConfig{Replicas: 2})
	// The preflight adopts the first member in name order as the
	// reference policy, so the odd one out must sort last.
	matching := startNode(t, "a-plain-1", server.Config{Dedup: true})
	matching2 := startNode(t, "a-plain-2", server.Config{Dedup: true})
	odd := startNode(t, "z-odd", server.Config{Dedup: true, Codec: "zlib"})
	for _, n := range []*testNode{matching, matching2, odd} {
		if err := rt.AddMember(n.name, n.url); err != nil {
			t.Fatal(err)
		}
	}

	statuses, err := rt.CheckMembers(ctx)
	if err == nil {
		t.Fatal("preflight accepted a mixed-codec cluster")
	}
	refused := 0
	for _, ms := range statuses {
		if ms.Incompatible != "" {
			refused++
			if ms.Name != "z-odd" {
				t.Fatalf("wrong member refused: %s (%s)", ms.Name, ms.Incompatible)
			}
		}
	}
	if refused != 1 {
		t.Fatalf("refused %d members, want 1", refused)
	}
	if rt.Table().Usable("z-odd") {
		t.Fatal("incompatible member still routable")
	}

	// -allow-mixed waives the refusal (rolling upgrades).
	rtMixed := NewRouter(obs.New(), RouterConfig{Replicas: 2, AllowMixed: true})
	for _, n := range []*testNode{matching, matching2, odd} {
		if err := rtMixed.AddMember(n.name, n.url); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rtMixed.CheckMembers(ctx); err != nil {
		t.Fatalf("AllowMixed preflight: %v", err)
	}
	if !rtMixed.Table().Usable("z-odd") {
		t.Fatal("AllowMixed still refused the odd member")
	}
}

// TestRebalanceMovesOnlyMissingChunks: a node that rejoins with its
// stores intact must not be re-sent data it already holds.
func TestRebalanceMovesOnlyMissingChunks(t *testing.T) {
	ctx := context.Background()
	tc := newCluster(t, 3, 2, RouterConfig{})

	const sets = 16
	saved := map[string]*core.ModelSet{}
	var order []string
	for i := 0; i < sets; i++ {
		set := clusterSet(t, uint64(500+i))
		res, err := tc.client.Save(ctx, "baseline", set, "", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		saved[res.SetID] = set
		order = append(order, res.SetID)
	}

	// A clean cluster rebalances to zero moves.
	rep0, err := tc.rt.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Synced != 0 || rep0.BytesFetched != 0 {
		t.Fatalf("clean-cluster rebalance moved data: %+v", rep0)
	}

	// node-c leaves (cleanly — its store survives). Rebalance restores
	// R=2 among the remaining pair.
	down := tc.nodes[2]
	tc.rt.Table().Remove(down.name)
	rep1, err := tc.rt.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Synced == 0 || rep1.BytesFetched == 0 {
		t.Fatalf("departure rebalance moved nothing: %+v", rep1)
	}

	// While node-c is away, derived siblings of every set are saved:
	// lineage co-location places each next to its base, and a sibling
	// shares almost all chunk content with it.
	for i, baseID := range order {
		sib := saved[baseID].Clone()
		sib.Models[0].Params()[0].Tensor.Data[0] += float32(i + 1)
		res, err := tc.client.Save(ctx, "baseline", sib, baseID, nil, nil)
		if err != nil {
			t.Fatalf("sibling save %d: %v", i, err)
		}
		saved[res.SetID] = sib
	}

	// node-c rejoins with its old store intact. It now owes the
	// siblings of the sets it owns — but because it already holds the
	// bases, the syncs must pull only the few changed chunks; the
	// shared ones are local CAS hits, not wire transfers.
	if err := tc.rt.AddMember(down.name, down.url); err != nil {
		t.Fatal(err)
	}
	rep2, err := tc.rt.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Synced == 0 {
		t.Fatalf("rejoin rebalance owed node-c nothing: %+v", rep2)
	}
	if rep2.Unplaceable != 0 || len(rep2.Errors) != 0 {
		t.Fatalf("rejoin rebalance: %+v", rep2)
	}
	for _, mv := range rep2.Moves {
		if mv.To != down.name {
			t.Fatalf("rejoin rebalance moved %s/%s to %s — only node-c should be owed data",
				mv.Approach, mv.SetID, mv.To)
		}
	}
	if rep2.ChunkCacheHits == 0 {
		t.Fatalf("rejoin syncs hit no local chunks — full copies instead of deltas: %+v", rep2)
	}
	if rep2.BytesFetched >= rep1.BytesFetched {
		t.Fatalf("rejoin fetched %d bytes vs %d for the full departure rebalance — not a delta",
			rep2.BytesFetched, rep1.BytesFetched)
	}

	// Steady state: one more pass is a no-op, and every set reads back
	// byte-identical through the router.
	rep3, err := tc.rt.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Synced != 0 || rep3.BytesFetched != 0 {
		t.Fatalf("rebalance did not converge: %+v", rep3)
	}
	for id, want := range saved {
		got, err := tc.client.Recover(ctx, "baseline", id)
		if err != nil || !want.Equal(got) {
			t.Fatalf("set %s wrong after rebalance cycle (err=%v)", id, err)
		}
		// Rebalance adds missing replicas and never deletes, so a set
		// saved while membership was smaller may exceed R — the
		// invariant is that every current owner holds it and at least
		// R copies exist.
		h := holders(t, tc, "baseline", id)
		if len(h) < 2 {
			t.Fatalf("set %s under-replicated on %v", id, h)
		}
		held := map[string]bool{}
		for _, name := range h {
			held[name] = true
		}
		for _, owner := range tc.rt.Table().Owners(PlacementKey(id)) {
			if !held[owner.Name] {
				t.Fatalf("owner %s missing set %s (held by %v)", owner.Name, id, h)
			}
		}
	}
}

// TestClusterChurnConcurrentSavesStress is the satellite-3 coverage: saves
// racing a node join and a node leave lose nothing, and every node's
// store is fsck-clean afterwards.
func TestClusterChurnConcurrentSavesStress(t *testing.T) {
	ctx := context.Background()
	tc := newCluster(t, 3, 2, RouterConfig{})

	const sets = 24
	var (
		mu    sync.Mutex
		saved = map[string]*core.ModelSet{}
	)
	var wg sync.WaitGroup
	errs := make(chan error, sets)
	start := make(chan struct{})
	for i := 0; i < sets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			set := clusterSet(t, uint64(1000+i))
			res, err := tc.client.Save(ctx, "baseline", set, "", nil, nil)
			if err != nil {
				errs <- fmt.Errorf("save %d: %w", i, err)
				return
			}
			mu.Lock()
			saved[res.SetID] = set
			mu.Unlock()
		}(i)
	}

	// Membership churns while the saves are in flight: a fourth node
	// joins, then the original third node leaves.
	joiner := startNode(t, "node-d", server.Config{Dedup: true})
	close(start)
	if err := tc.rt.AddMember(joiner.name, joiner.url); err != nil {
		t.Fatal(err)
	}
	tc.nodes = append(tc.nodes, joiner)
	leaver := tc.nodes[2]
	tc.rt.Table().Remove(leaver.name)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if len(saved) != sets {
		t.Fatalf("saved %d sets, want %d", len(saved), sets)
	}

	// Rebalance pays any replication debt the churn created.
	rep, err := tc.rt.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unplaceable != 0 || len(rep.Errors) != 0 {
		t.Fatalf("churn rebalance: %+v", rep)
	}

	// No set lost: the routed union list has all of them, and each one
	// recovers byte-identically with full replication.
	listed, err := tc.client.List(ctx, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	listedSet := map[string]bool{}
	for _, id := range listed {
		listedSet[id] = true
	}
	for id, want := range saved {
		if !listedSet[id] {
			t.Fatalf("set %s missing from routed list", id)
		}
		got, err := tc.client.Recover(ctx, "baseline", id)
		if err != nil || !want.Equal(got) {
			t.Fatalf("set %s wrong after churn (err=%v)", id, err)
		}
		if h := holders(t, tc, "baseline", id); len(h) != 2 {
			t.Fatalf("set %s on %v after churn+rebalance, want 2", id, h)
		}
	}

	// Every member's store is internally consistent.
	for _, n := range tc.nodes {
		if !tc.rt.Table().Usable(n.name) {
			continue
		}
		fr, err := n.client.Fsck(ctx, false)
		if err != nil {
			t.Fatalf("fsck %s: %v", n.name, err)
		}
		if !fr.Clean() {
			t.Fatalf("fsck %s after churn: %+v", n.name, fr.Issues)
		}
	}
}

// TestRouterLineageColocation: derived saves through the router land
// on the same owners as their base, so lineage recovery never needs a
// cross-node chunk fetch.
func TestRouterLineageColocation(t *testing.T) {
	ctx := context.Background()
	tc := newCluster(t, 3, 2, RouterConfig{})

	base := clusterSet(t, 9)
	baseRes, err := tc.client.Save(ctx, "baseline", base, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	derived := base.Clone()
	derived.Models[0].Params()[0].Tensor.Data[0] += 1
	derRes, err := tc.client.Save(ctx, "baseline", derived, baseRes.SetID, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	baseHolders := holders(t, tc, "baseline", baseRes.SetID)
	derHolders := holders(t, tc, "baseline", derRes.SetID)
	if fmt.Sprint(baseHolders) != fmt.Sprint(derHolders) {
		t.Fatalf("lineage split: base on %v, derived on %v", baseHolders, derHolders)
	}

	got, err := tc.client.Recover(ctx, "baseline", derRes.SetID)
	if err != nil || !derived.Equal(got) {
		t.Fatalf("derived set wrong through router (err=%v)", err)
	}
}
