package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// Pull-protocol metric names, recorded into Client.Reg.
const (
	// MetricPullChunksFetched counts chunks downloaded over the wire.
	MetricPullChunksFetched = "mmm_pull_chunks_fetched_total"
	// MetricPullCacheHits counts chunks served from the local cache
	// instead of the network — the dedup win, measured on the wire.
	MetricPullCacheHits = "mmm_pull_chunk_cache_hits_total"
	// MetricPullBytes counts payload bytes received by chunk fetches,
	// partial reads included.
	MetricPullBytes = "mmm_pull_bytes_total"
	// MetricPullResumes counts range requests that resumed a partially
	// transferred chunk after a failure.
	MetricPullResumes = "mmm_pull_resumes_total"
	// MetricPullDigestMismatches counts chunk bodies discarded because
	// their bytes did not hash to the requested content address.
	MetricPullDigestMismatches = "mmm_pull_digest_mismatches_total"
	// MetricPullFallbacks counts recoveries that fell back to the
	// multipart path because the server or set cannot serve chunks.
	MetricPullFallbacks = "mmm_pull_fallbacks_total"
)

// PullCache is the client-side content-addressed chunk cache the pull
// protocol diffs against: chunks already present locally are never
// re-downloaded. It reuses the CAS layer's on-disk layout
// (cas/chunks/<hh>/<hash>), so a cache directory is inspectable with
// the same tooling as a store, and PutChunk's digest check guarantees a
// corrupt body can never enter it.
type PullCache struct {
	cas *cas.Store
}

// NewPullCache wraps a blob store as a pull cache. Tests use an
// in-memory store; OpenPullCache is the on-disk constructor.
func NewPullCache(blobs *blobstore.Store) *PullCache {
	return &PullCache{cas: cas.For(blobs)}
}

// OpenPullCache opens (creating if needed) an on-disk pull cache rooted
// at dir.
func OpenPullCache(dir string) (*PullCache, error) {
	b, err := backend.NewDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: opening pull cache: %w", err)
	}
	return NewPullCache(blobstore.New(b, latency.CostModel{}, nil)), nil
}

// Has reports whether the chunk is cached.
func (p *PullCache) Has(hash string) bool { return p.cas.HasChunk(hash) }

// Get returns a cached chunk's logical bytes.
func (p *PullCache) Get(hash string, size int64) ([]byte, error) {
	return p.cas.GetChunk(hash, size)
}

// Put stores a verified chunk body under its content address.
func (p *PullCache) Put(hash string, data []byte) error {
	return p.cas.PutChunk(hash, data)
}

// pullWorkers is the chunk-fetch fan-out.
func (c *Client) pullWorkers() int {
	if c.PullWorkers > 0 {
		return c.PullWorkers
	}
	return pool.DefaultWorkers()
}

// pullManifest fetches the chunk-transfer manifest of a set. fallback
// is true when the set cannot be pulled chunk-wise — the server
// predates the protocol (its mux answers 404/405 without the envelope),
// the approach or set has no single chunk-addressed params blob
// (pull_unavailable), or the manifest fails validation — and the caller
// should recover over the multipart path instead. A 404 that names
// set_not_found is a real error: the multipart path would only repeat
// it.
func (c *Client) pullManifest(ctx context.Context, approach, setID string) (m *PullManifest, fallback bool, err error) {
	resp, err := c.do(ctx, http.MethodGet, "/api/cas/recipe/"+approach+"/"+setID, "", nil)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxPullManifestBytes+1))
		if err != nil {
			return nil, false, fmt.Errorf("server: reading pull manifest: %w", err)
		}
		m, err := DecodePullManifest(data)
		if err != nil {
			// A server speaking a different dialect is a compatibility
			// problem, not a data problem: use the path that works.
			return nil, true, nil
		}
		c.reg().Counter(MetricPullBytes).Add(int64(len(data)))
		return m, false, nil
	case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
		// Only an envelope that explicitly names set_not_found is a real
		// miss — the multipart path would just repeat it. Everything
		// else (pull_unavailable, an old server's code-less mux 404, a
		// proxy's 501) means "this route cannot serve chunks": fall
		// back. Unknown approaches fall back too and fail with the
		// proper error over the multipart path.
		var e httpError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Code == codeSetNotFound {
			return nil, false, fmt.Errorf("server: %s (HTTP %d): %w", e.Error, resp.StatusCode, core.ErrSetNotFound)
		}
		return nil, true, nil
	default:
		return nil, false, decodeError(resp)
	}
}

// pullParams downloads the byte range [off, off+n) of the manifest's
// parameter blob by assembling it from chunks: cached chunks are read
// locally, missing chunks are fetched in parallel across the worker
// pool (each with digest verification and range-resume), and verified
// bodies are cached before assembly. Passing off=0, n=m.Size fetches
// the whole blob.
func (c *Client) pullParams(ctx context.Context, m *PullManifest, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > m.Size {
		return nil, fmt.Errorf("server: pull range [%d,%d) outside blob of %d bytes", off, off+n, m.Size)
	}
	// Select the chunks overlapping the range, with their blob offsets.
	type need struct {
		chunk PullChunk
		start int64 // offset of the chunk inside the blob
	}
	var needs []need
	var pos int64
	for _, ch := range m.Chunks {
		if pos < off+n && pos+ch.Size > off {
			needs = append(needs, need{chunk: ch, start: pos})
		}
		pos += ch.Size
	}

	// Diff distinct digests against the local cache.
	sizes := make(map[string]int64, len(needs))
	for _, nd := range needs {
		sizes[nd.chunk.Hash] = nd.chunk.Size
	}
	var missing []string
	seen := make(map[string]bool, len(sizes))
	for _, nd := range needs {
		h := nd.chunk.Hash
		if seen[h] {
			continue
		}
		seen[h] = true
		if c.Cache != nil && c.Cache.Has(h) {
			c.reg().Counter(MetricPullCacheHits).Inc()
			continue
		}
		missing = append(missing, h)
	}

	// Fetch what the cache lacks, in parallel. Fetched bodies are kept
	// in memory for assembly and written through to the cache so the
	// next pull diffs against them.
	fetched := make(map[string][]byte, len(missing))
	var mu sync.Mutex
	err := pool.Run(ctx, c.pullWorkers(), len(missing), func(i int) error {
		h := missing[i]
		data, err := c.fetchChunk(ctx, h, sizes[h])
		if err != nil {
			return err
		}
		if c.Cache != nil {
			if err := c.Cache.Put(h, data); err != nil {
				return err
			}
		}
		mu.Lock()
		fetched[h] = data
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]byte, n)
	for _, nd := range needs {
		data, ok := fetched[nd.chunk.Hash]
		if !ok {
			if c.Cache == nil {
				return nil, fmt.Errorf("server: chunk %s missing after fetch", nd.chunk.Hash)
			}
			var err error
			if data, err = c.Cache.Get(nd.chunk.Hash, nd.chunk.Size); err != nil {
				return nil, fmt.Errorf("server: reading cached chunk: %w", err)
			}
		}
		if int64(len(data)) != nd.chunk.Size {
			return nil, fmt.Errorf("server: chunk %s has %d bytes, manifest says %d: %w",
				nd.chunk.Hash, len(data), nd.chunk.Size, core.ErrCorruptBlob)
		}
		// Intersect [nd.start, nd.start+size) with [off, off+n).
		lo, hi := nd.start, nd.start+nd.chunk.Size
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		copy(out[lo-off:hi-off], data[lo-nd.start:hi-nd.start])
	}
	return out, nil
}

// FetchChunk downloads one chunk's logical bytes by content address —
// the repair path: the scrubber re-fetches quarantined or missing
// chunks from a healthy peer through it. It carries the pull
// protocol's full verification, retry, and resume behavior, and
// satisfies scrub.ChunkFetcher.
func (c *Client) FetchChunk(ctx context.Context, hash string, size int64) ([]byte, error) {
	return c.fetchChunk(ctx, hash, size)
}

// fetchChunk downloads one chunk with digest verification, retry, and
// mid-body resume: a transfer that dies partway is continued with a
// Range request from the received offset instead of restarting, so
// flaky links converge instead of thrashing. A body whose bytes do not
// hash to the requested address is discarded and refetched from
// scratch — never returned, never cached.
func (c *Client) fetchChunk(ctx context.Context, hash string, size int64) ([]byte, error) {
	attempts := c.Retry.attempts()
	buf := make([]byte, 0, size)
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.reg().Counter(MetricClientRetries).Inc()
		}
		if c.Breaker != nil && !c.Breaker.allow() {
			c.noteBreaker()
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", ErrCircuitOpen, lastErr)
			}
			return nil, ErrCircuitOpen
		}
		retryAfter, permanent, err := c.fetchChunkOnce(ctx, hash, size, &buf)
		if err == nil {
			sum := sha256.Sum256(buf)
			if hex.EncodeToString(sum[:]) == hash {
				if c.Breaker != nil {
					c.Breaker.onSuccess()
					c.noteBreaker()
				}
				c.reg().Counter(MetricPullChunksFetched).Inc()
				return buf, nil
			}
			// Wrong bytes under the address: poison, start over clean.
			c.reg().Counter(MetricPullDigestMismatches).Inc()
			buf = buf[:0]
			err = fmt.Errorf("server: chunk %s: body does not match digest: %w", hash, core.ErrCorruptBlob)
		}
		lastErr = err
		if c.Breaker != nil {
			c.Breaker.onFailure()
			c.noteBreaker()
		}
		if permanent || ctx.Err() != nil {
			return nil, lastErr
		}
		if attempt < attempts {
			t := time.NewTimer(c.Retry.delay(attempt, retryAfter))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
	}
	return nil, fmt.Errorf("server: chunk %s failed after %d attempts: %w", hash, attempts, lastErr)
}

// fetchChunkOnce performs one streaming attempt at the chunk, appending
// received bytes to *buf. When *buf already holds a partial body, the
// attempt asks the server to resume with a Range request and verifies
// the 206's Content-Range actually continues at the right offset —
// anything else restarts the transfer from zero rather than splicing
// bytes at the wrong position. permanent marks failures a retry cannot
// fix (unknown digest, server-detected corruption).
func (c *Client) fetchChunkOnce(ctx context.Context, hash string, size int64, buf *[]byte) (retryAfter time.Duration, permanent bool, err error) {
	path := "/api/cas/chunk/" + hash + "?s=" + strconv.FormatInt(size, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return 0, true, err
	}
	resuming := int64(len(*buf)) > 0 && int64(len(*buf)) < size
	if resuming {
		req.Header.Set("Range", "bytes="+strconv.FormatInt(int64(len(*buf)), 10)+"-")
		req.Header.Set("If-Range", `"`+hash+`"`)
		c.reg().Counter(MetricPullResumes).Inc()
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Full body (or a server ignoring Range): restart accumulation.
		*buf = (*buf)[:0]
	case http.StatusPartialContent:
		if !resuming {
			return 0, false, fmt.Errorf("server: chunk %s: unsolicited partial content", hash)
		}
		start, ok := contentRangeStart(resp.Header.Get("Content-Range"))
		if !ok || start != int64(len(*buf)) {
			// The server resumed somewhere else; splicing would corrupt.
			*buf = (*buf)[:0]
			return 0, false, fmt.Errorf("server: chunk %s: resume at wrong offset (Content-Range %q, want %d)",
				hash, resp.Header.Get("Content-Range"), len(*buf))
		}
	case http.StatusRequestedRangeNotSatisfiable:
		*buf = (*buf)[:0]
		return 0, false, fmt.Errorf("server: chunk %s: range not satisfiable, restarting", hash)
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return parseRetryAfter(resp), false, fmt.Errorf("server: chunk %s: HTTP %d", hash, resp.StatusCode)
	default:
		return 0, true, decodeError(resp)
	}

	// Stream with the manifest-declared bound (+1 detects overshoot,
	// mirroring the decompression bomb guard): a response longer than
	// the chunk can never verify, so stop paying for it immediately.
	remaining := size - int64(len(*buf))
	lr := io.LimitReader(resp.Body, remaining+1)
	tmp := make([]byte, 32<<10)
	for {
		n, rerr := lr.Read(tmp)
		if n > 0 {
			*buf = append(*buf, tmp[:n]...)
			c.reg().Counter(MetricPullBytes).Add(int64(n))
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Connection died mid-body; keep what arrived for resume.
			return 0, false, fmt.Errorf("server: chunk %s: transfer interrupted: %w", hash, rerr)
		}
	}
	if int64(len(*buf)) > size {
		*buf = (*buf)[:0]
		return 0, false, fmt.Errorf("server: chunk %s: body exceeds declared %d bytes", hash, size)
	}
	if int64(len(*buf)) < size {
		// Clean EOF short of the declared size: truncation the transport
		// did not flag. Resume from where it stopped.
		return 0, false, fmt.Errorf("server: chunk %s: body truncated at %d of %d bytes: %w",
			hash, len(*buf), size, io.ErrUnexpectedEOF)
	}
	return 0, false, nil
}

// contentRangeStart parses the first-byte position out of a
// "bytes start-end/total" Content-Range value.
func contentRangeStart(v string) (int64, bool) {
	v, ok := strings.CutPrefix(v, "bytes ")
	if !ok {
		return 0, false
	}
	dash := strings.IndexByte(v, '-')
	if dash < 0 {
		return 0, false
	}
	start, err := strconv.ParseInt(v[:dash], 10, 64)
	if err != nil || start < 0 {
		return 0, false
	}
	return start, true
}

// pullRecover recovers a full set over the pull protocol. ok is false
// when the set must be recovered over the multipart path instead.
func (c *Client) pullRecover(ctx context.Context, approach, setID string) (*core.ModelSet, bool, error) {
	m, fallback, err := c.pullManifest(ctx, approach, setID)
	if err != nil {
		return nil, false, err
	}
	if fallback {
		return nil, false, nil
	}
	params, err := c.pullParams(ctx, m, 0, m.Size)
	if err != nil {
		return nil, false, err
	}
	set, err := setFromBytes(m.Arch, m.NumModels, params)
	if err != nil {
		return nil, false, err
	}
	return set, true, nil
}

// pullRecoverModels recovers selected models over the pull protocol,
// fetching only the chunks overlapping their byte ranges. ok is false
// when the caller must fall back to the multipart path.
func (c *Client) pullRecoverModels(ctx context.Context, approach, setID string, indices []int) (*core.PartialRecovery, bool, error) {
	m, fallback, err := c.pullManifest(ctx, approach, setID)
	if err != nil {
		return nil, false, err
	}
	if fallback {
		return nil, false, nil
	}
	per := int64(m.Arch.ParamBytes())
	distinct := make([]int, 0, len(indices))
	seen := make(map[int]bool, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= m.NumModels {
			return nil, false, fmt.Errorf("server: model index %d outside set of %d models", idx, m.NumModels)
		}
		if !seen[idx] {
			seen[idx] = true
			distinct = append(distinct, idx)
		}
	}
	sort.Ints(distinct)
	out := &core.PartialRecovery{Arch: m.Arch, Models: map[int]*nn.Model{}}
	for _, idx := range distinct {
		data, err := c.pullParams(ctx, m, int64(idx)*per, per)
		if err != nil {
			return nil, false, err
		}
		mod, err := nn.NewModelUninitialized(m.Arch)
		if err != nil {
			return nil, false, err
		}
		if _, err := mod.SetParamBytes(data); err != nil {
			return nil, false, err
		}
		out.Models[idx] = mod
	}
	return out, true, nil
}
