package server

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/docstore"
)

// The idempotency journal makes save retries safe across connection
// faults. A client that sends a save with an Idempotency-Key and then
// loses the connection cannot tell whether the save landed; on retry
// the journal answers with the recorded result instead of writing a
// duplicate set. Entries persist in the docstore, so dedup survives a
// server restart — the exact window (save landed, process bounced,
// client retried) where in-process state would fail.

// journalCollection holds completed-save records. It is not one of
// fsck's owned collections, so integrity scans leave it alone.
const journalCollection = "op_journal"

// journalEntry records one completed save under its idempotency key.
type journalEntry struct {
	Approach string          `json:"approach"`
	Key      string          `json:"key"`
	Result   core.SaveResult `json:"result"`
	SavedAt  time.Time       `json:"saved_at"`
}

// journalID derives the document ID from (approach, key). Keys are
// client-chosen free text; hashing keeps them collision-free across
// approaches and safe for any ID syntax.
func journalID(approach, key string) string {
	sum := sha256.Sum256([]byte(approach + "\x00" + key))
	return hex.EncodeToString(sum[:])
}

// opJournal is the persisted journal plus per-key in-process locks
// serializing concurrent retries of the same operation.
type opJournal struct {
	docs *docstore.Store

	mu    sync.Mutex
	locks map[string]*keyLock
}

type keyLock struct {
	mu   sync.Mutex
	refs int
}

func newOpJournal(docs *docstore.Store) *opJournal {
	return &opJournal{docs: docs, locks: map[string]*keyLock{}}
}

// lock serializes callers on (approach, key) and returns the unlock
// function. Lock entries are reference-counted so the map does not
// grow with every key ever seen.
func (j *opJournal) lock(approach, key string) func() {
	id := journalID(approach, key)
	j.mu.Lock()
	l := j.locks[id]
	if l == nil {
		l = &keyLock{}
		j.locks[id] = l
	}
	l.refs++
	j.mu.Unlock()
	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		j.mu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(j.locks, id)
		}
		j.mu.Unlock()
	}
}

// completed returns the journaled result for (approach, key), if any.
func (j *opJournal) completed(approach, key string) (core.SaveResult, bool, error) {
	var e journalEntry
	err := j.docs.Get(journalCollection, journalID(approach, key), &e)
	if backend.IsNotFound(err) {
		return core.SaveResult{}, false, nil
	}
	if err != nil {
		return core.SaveResult{}, false, err
	}
	return e.Result, true, nil
}

// record journals a completed save.
func (j *opJournal) record(approach, key string, res core.SaveResult) error {
	return j.docs.Insert(journalCollection, journalID(approach, key), journalEntry{
		Approach: approach, Key: key, Result: res, SavedAt: time.Now().UTC(),
	})
}
