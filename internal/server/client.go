package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
)

// Client talks to a management Server. It mirrors the approach API:
// Save, Recover, RecoverModels, plus the operational endpoints. Every
// method takes a context that cancels the request in flight.
//
// GETs retry transient failures (transport errors, truncated bodies,
// 502/503/504) with jittered backoff; POSTs are sent once unless made
// idempotent via SaveWithKey. An optional Breaker stops requests to a
// server that keeps failing. See retry.go.
type Client struct {
	// BaseURL is the server root, e.g. "http://manager:8080".
	BaseURL string
	// HTTP is the client to use; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry tunes the retry loop; nil uses the defaults documented on
	// RetryPolicy.
	Retry *RetryPolicy
	// Breaker, when set, applies circuit breaking to every request.
	Breaker *Breaker
	// Reg receives the mmm_client_* metric series; nil means
	// obs.Default.
	Reg *obs.Registry
	// Codec, when non-empty, is stamped into every save manifest as an
	// assertion about the server's configured compression codec. A
	// server whose codec differs rejects the save with 422 before
	// writing anything, so a client that cares about on-disk encoding
	// fails fast instead of discovering a mismatch at audit time.
	// Leave empty to accept whatever the server is configured with.
	Codec string
	// Cache, when set, is the local content-addressed chunk cache the
	// pull protocol diffs recoveries against: chunks already present
	// are never re-downloaded, so re-pulling a lightly mutated set
	// costs O(changed chunks) on the wire. Recoveries work without a
	// cache — every chunk is then fetched — and fall back to the
	// multipart path entirely when the server or set cannot serve
	// chunks. See PullCache.
	Cache *PullCache
	// PullWorkers bounds the parallel chunk fetches of one pull
	// recovery; 0 means one worker per CPU.
	PullWorkers int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// decodeError extracts the server's JSON error envelope and, when the
// envelope carries an error code, wraps the matching core sentinel so
// callers can test with errors.Is across the HTTP boundary. A 404
// without a code still wraps core.ErrSetNotFound for older servers.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	msg := fmt.Sprintf("HTTP %d", resp.StatusCode)
	var e httpError
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		msg = fmt.Sprintf("%s (HTTP %d)", e.Error, resp.StatusCode)
	}
	if sentinel := sentinelForCode(e.Code); sentinel != nil {
		return fmt.Errorf("server: %s: %w", msg, sentinel)
	}
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("server: %s: %w", msg, core.ErrSetNotFound)
	}
	return fmt.Errorf("server: %s", msg)
}

// sentinelForCode inverts errorCode: wire code → core sentinel.
func sentinelForCode(code string) error {
	switch code {
	case codeSetNotFound:
		return core.ErrSetNotFound
	case codeChecksumMismatch:
		return core.ErrChecksumMismatch
	case codeCorruptBlob:
		return core.ErrCorruptBlob
	case codeBudgetExceeded:
		return core.ErrBudgetExceeded
	case codeBaseMismatch:
		return core.ErrBaseMismatch
	case codeNoSpace:
		return core.ErrNoSpace
	case codeSetExists:
		return core.ErrSetExists
	default:
		return nil
	}
}

// do sends one logical request through the retry/breaker layer. body
// must be a full, replayable payload; GETs are retried, other methods
// are sent once.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) (*http.Response, error) {
	return c.roundTrip(ctx, method, path, contentType, body, nil, method == http.MethodGet)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	// Closed before the status check so no branch — including panics in
	// the decoder — can leak the body. decodeError's own close is then
	// a harmless second close.
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.do(ctx, http.MethodPost, path, "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks the server is up.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]string
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return err
	}
	if out["status"] != "ok" {
		return fmt.Errorf("server unhealthy: %v", out)
	}
	return nil
}

// Approaches lists the approach names the server exposes.
func (c *Client) Approaches(ctx context.Context) ([]string, error) {
	var out []string
	err := c.getJSON(ctx, "/api/approaches", &out)
	return out, err
}

// List returns the set IDs saved under an approach.
func (c *Client) List(ctx context.Context, approach string) ([]string, error) {
	var out []string
	err := c.getJSON(ctx, "/api/"+approach+"/sets", &out)
	return out, err
}

// Info returns a set's lineage, newest first.
func (c *Client) Info(ctx context.Context, approach, setID string) ([]core.SetInfo, error) {
	var out []core.SetInfo
	err := c.getJSON(ctx, "/api/"+approach+"/sets/"+setID, &out)
	return out, err
}

// Save uploads a model set. base, updates, and train follow
// core.SaveRequest semantics. Save is sent once: without an
// idempotency key a retry could duplicate the set. Use SaveWithKey on
// unreliable networks.
func (c *Client) Save(ctx context.Context, approach string, set *core.ModelSet, base string, updates []core.ModelUpdate, train *core.TrainInfo) (core.SaveResult, error) {
	return c.save(ctx, approach, "", "", set, base, updates, train)
}

// SaveAs is Save with an explicit set ID (sent as X-Mmm-Set-Id): the
// set lands under setID instead of a server-allocated sequential ID,
// or fails with core.ErrSetExists if the ID is taken. Cluster
// rebalancers and replication tooling use it; single-node clients
// normally let the server allocate.
func (c *Client) SaveAs(ctx context.Context, approach, setID, key string, set *core.ModelSet, base string, updates []core.ModelUpdate, train *core.TrainInfo) (core.SaveResult, error) {
	if setID == "" {
		return core.SaveResult{}, fmt.Errorf("server: SaveAs needs a non-empty set ID")
	}
	return c.save(ctx, approach, key, setID, set, base, updates, train)
}

// SaveWithKey is Save with an Idempotency-Key: the server executes the
// save once per (approach, key) and replays the recorded result to
// retries, so the client retries transient failures as freely as a
// GET. Keys are client-chosen; a fresh operation needs a fresh key.
func (c *Client) SaveWithKey(ctx context.Context, approach, key string, set *core.ModelSet, base string, updates []core.ModelUpdate, train *core.TrainInfo) (core.SaveResult, error) {
	if key == "" {
		return core.SaveResult{}, fmt.Errorf("server: SaveWithKey needs a non-empty key")
	}
	return c.save(ctx, approach, key, "", set, base, updates, train)
}

func (c *Client) save(ctx context.Context, approach, key, setID string, set *core.ModelSet, base string, updates []core.ModelUpdate, train *core.TrainInfo) (core.SaveResult, error) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mpart, err := mw.CreateFormField("manifest")
	if err != nil {
		return core.SaveResult{}, err
	}
	manifest := Manifest{
		Arch: set.Arch, NumModels: set.Len(),
		Base: base, Updates: updates, Train: train,
		Codec: c.Codec,
	}
	if err := json.NewEncoder(mpart).Encode(manifest); err != nil {
		return core.SaveResult{}, err
	}
	ppart, err := mw.CreateFormFile("params", "params.bin")
	if err != nil {
		return core.SaveResult{}, err
	}
	if _, err := ppart.Write(setToBytes(set)); err != nil {
		return core.SaveResult{}, err
	}
	if err := mw.Close(); err != nil {
		return core.SaveResult{}, err
	}

	header := http.Header{}
	if key != "" {
		header.Set(IdempotencyKeyHeader, key)
	}
	if setID != "" {
		header.Set(SetIDHeader, setID)
	}
	resp, err := c.roundTrip(ctx, http.MethodPost, "/api/"+approach+"/sets",
		mw.FormDataContentType(), buf.Bytes(), header, key != "")
	if err != nil {
		return core.SaveResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return core.SaveResult{}, decodeError(resp)
	}
	var res core.SaveResult
	err = json.NewDecoder(resp.Body).Decode(&res)
	return res, err
}

// Recover downloads a full set. Servers and sets that speak the pull
// protocol are recovered chunk-wise — recipe diff against the local
// cache, parallel ranged chunk fetches, per-chunk digest verification —
// and everything else falls back to the one-shot multipart download.
// Recovered bytes are identical either way.
func (c *Client) Recover(ctx context.Context, approach, setID string) (*core.ModelSet, error) {
	set, ok, err := c.pullRecover(ctx, approach, setID)
	if err != nil {
		return nil, err
	}
	if ok {
		return set, nil
	}
	c.reg().Counter(MetricPullFallbacks).Inc()
	manifest, params, err := c.fetchParams(ctx, "/api/"+approach+"/sets/"+setID+"/params")
	if err != nil {
		return nil, err
	}
	return setFromBytes(manifest.Arch, manifest.NumModels, params)
}

// RecoverModels downloads selected models of a set, over the pull
// protocol when available (fetching only the chunks overlapping the
// requested models), falling back to the multipart path otherwise.
func (c *Client) RecoverModels(ctx context.Context, approach, setID string, indices []int) (*core.PartialRecovery, error) {
	rec, ok, err := c.pullRecoverModels(ctx, approach, setID, indices)
	if err != nil {
		return nil, err
	}
	if ok {
		return rec, nil
	}
	c.reg().Counter(MetricPullFallbacks).Inc()
	rec, _, err = c.recoverModels(ctx, approach, setID, indices, false)
	return rec, err
}

// RecoverModelsPartial downloads selected models in degraded mode:
// models the server cannot recover are skipped, and the report names
// them. See core.WithPartialResults.
func (c *Client) RecoverModelsPartial(ctx context.Context, approach, setID string, indices []int) (*core.PartialRecovery, *core.RecoveryReport, error) {
	return c.recoverModels(ctx, approach, setID, indices, true)
}

// RecoverPartial downloads a whole set in degraded mode, returning the
// recoverable models plus the report of what was lost.
func (c *Client) RecoverPartial(ctx context.Context, approach, setID string) (*core.PartialRecovery, *core.RecoveryReport, error) {
	return c.recoverModels(ctx, approach, setID, nil, true)
}

func (c *Client) recoverModels(ctx context.Context, approach, setID string, indices []int, partial bool) (*core.PartialRecovery, *core.RecoveryReport, error) {
	path := "/api/" + approach + "/sets/" + setID + "/params"
	q := make([]string, 0, 2)
	if len(indices) > 0 {
		strs := make([]string, len(indices))
		for i, v := range indices {
			strs[i] = strconv.Itoa(v)
		}
		q = append(q, "indices="+strings.Join(strs, ","))
	}
	if partial {
		q = append(q, "partial=1")
	}
	if len(q) > 0 {
		path += "?" + strings.Join(q, "&")
	}
	manifest, params, err := c.fetchParams(ctx, path)
	if err != nil {
		return nil, nil, err
	}
	per := manifest.Arch.ParamBytes()
	if len(params) != per*len(manifest.Indices) {
		return nil, nil, fmt.Errorf("server: selective recovery returned %d bytes for %d models",
			len(params), len(manifest.Indices))
	}
	out := &core.PartialRecovery{Arch: manifest.Arch, Models: map[int]*nn.Model{}}
	for i, idx := range manifest.Indices {
		m, err := nn.NewModelUninitialized(manifest.Arch)
		if err != nil {
			return nil, nil, err
		}
		if _, err := m.SetParamBytes(params[i*per : (i+1)*per]); err != nil {
			return nil, nil, err
		}
		out.Models[idx] = m
	}
	return out, manifest.Report, nil
}

// fetchParams downloads a multipart recovery response. Responses whose
// multipart framing ends before the closing boundary — a connection
// torn down mid-body after the status line was already out — are
// transport failures, not data, and are retried like any other
// transient error rather than surfacing as a nonsensical size mismatch.
func (c *Client) fetchParams(ctx context.Context, path string) (*RecoveryManifest, []byte, error) {
	attempts := c.Retry.attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.reg().Counter(MetricClientRetries).Inc()
		}
		manifest, params, err := c.fetchParamsOnce(ctx, path)
		if err == nil {
			return manifest, params, nil
		}
		if !truncatedResponse(err) {
			return nil, nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, nil, lastErr
		}
		if attempt < attempts {
			t := time.NewTimer(c.Retry.delay(attempt, 0))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, nil, ctx.Err()
			case <-t.C:
			}
		}
	}
	return nil, nil, fmt.Errorf("server: recovery failed after %d attempts: %w", attempts, lastErr)
}

// truncatedResponse reports whether err means the recovery body ended
// before its multipart framing was complete.
func truncatedResponse(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF)
}

func (c *Client) fetchParamsOnce(ctx context.Context, path string) (*RecoveryManifest, []byte, error) {
	resp, err := c.do(ctx, http.MethodGet, path, "", nil)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, decodeError(resp)
	}
	mediaType, mtParams, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || !strings.HasPrefix(mediaType, "multipart/") {
		return nil, nil, fmt.Errorf("server: unexpected content type %q", resp.Header.Get("Content-Type"))
	}
	mr := multipart.NewReader(resp.Body, mtParams["boundary"])
	var manifest *RecoveryManifest
	var params []byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("server: reading recovery response: %w", err)
		}
		switch part.FormName() {
		case "manifest":
			manifest = &RecoveryManifest{}
			if err := json.NewDecoder(io.LimitReader(part, maxPullManifestBytes)).Decode(manifest); err != nil {
				return nil, nil, fmt.Errorf("server: parsing recovery manifest: %w", err)
			}
		case "params":
			// Cap the read at the manifest-declared size (+1 to detect
			// overshoot) so a corrupt or malicious response cannot drive
			// an unbounded allocation. When the params part arrives
			// before the manifest — a layout no known server produces —
			// the save-side budget bounds it instead.
			limit := int64(maxSaveBytes)
			if expected, ok := expectedParamBytes(manifest); ok {
				limit = expected
			}
			if params, err = io.ReadAll(io.LimitReader(part, limit+1)); err != nil {
				return nil, nil, fmt.Errorf("server: reading recovery params: %w", err)
			}
			if int64(len(params)) > limit {
				return nil, nil, fmt.Errorf("server: params part exceeds declared %d bytes", limit)
			}
		}
	}
	if manifest == nil || manifest.Arch == nil {
		return nil, nil, fmt.Errorf("server: recovery response missing manifest")
	}
	return manifest, params, nil
}

// expectedParamBytes is the exact params-part size a recovery manifest
// declares: per-model bytes times the models being returned (the
// selected indices on selective recoveries, the whole set otherwise).
func expectedParamBytes(m *RecoveryManifest) (int64, bool) {
	if m == nil || m.Arch == nil {
		return 0, false
	}
	n := m.NumModels
	if len(m.Indices) > 0 {
		n = len(m.Indices)
	}
	if n < 0 {
		return 0, false
	}
	return int64(m.Arch.ParamBytes()) * int64(n), true
}

// Verify runs a server-side store verification.
func (c *Client) Verify(ctx context.Context, approach string) ([]core.Issue, error) {
	var out []core.Issue
	err := c.postJSON(ctx, "/api/"+approach+"/verify", struct{}{}, &out)
	return out, err
}

// Prune expires all sets except the closure of keep.
func (c *Client) Prune(ctx context.Context, approach string, keep []string) (*core.PruneReport, error) {
	var out core.PruneReport
	if err := c.postJSON(ctx, "/api/"+approach+"/prune", pruneRequest{Keep: keep}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fsck runs a server-side store-wide integrity check across all
// approaches; repair additionally deletes orphaned crash debris.
func (c *Client) Fsck(ctx context.Context, repair bool) (*core.FsckReport, error) {
	var out core.FsckReport
	if err := c.postJSON(ctx, "/api/fsck", fsckRequest{Repair: repair}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Du reports server-side storage occupancy: logical versus physical
// bytes per set and store-wide, including the dedup ratio.
func (c *Client) Du(ctx context.Context) (*core.DuReport, error) {
	var out core.DuReport
	if err := c.getJSON(ctx, "/api/du", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PutDataset registers a dataset spec in the server's registry and
// returns its ID — required before saving provenance updates that
// reference it.
func (c *Client) PutDataset(ctx context.Context, spec dataset.Spec) (string, error) {
	var out map[string]string
	if err := c.postJSON(ctx, "/api/datasets", spec, &out); err != nil {
		return "", err
	}
	return out["id"], nil
}

// Metrics downloads the server's metrics in Prometheus text
// exposition format.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", "", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// Datasets lists the registered dataset IDs.
func (c *Client) Datasets(ctx context.Context) ([]string, error) {
	var out []string
	err := c.getJSON(ctx, "/api/datasets", &out)
	return out, err
}
