package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/rng"
)

// Client-side resilience: the paper's deployment picture has fleet
// gateways pushing saves over real networks, where connections reset
// and servers drain. The client retries transient failures with
// jittered exponential backoff — but only where a retry cannot
// duplicate work: GETs are safe by construction, and saves become safe
// once an Idempotency-Key lets the server deduplicate them. A
// consecutive-failure circuit breaker stops hammering a server that is
// down, probing it with single requests once a cooldown passes.

// Client-side metric names.
const (
	// MetricClientRetries counts retry attempts (not first attempts).
	MetricClientRetries = "mmm_client_retries_total"
	// MetricClientBreakerState is the breaker state gauge:
	// 0 closed, 1 open, 2 half-open.
	MetricClientBreakerState = "mmm_client_breaker_state"
)

// ErrCircuitOpen reports that the client's circuit breaker is open and
// the request was not sent. Match with errors.Is.
var ErrCircuitOpen = errors.New("server: circuit breaker open")

// RetryPolicy configures the client's retry loop. The zero value of
// each field picks the default noted on it.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, first attempt included.
	// Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 2s.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for tests. Default 1.
	Seed uint64

	once sync.Once
	mu   sync.Mutex
	rand *rng.RNG
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

// delay computes the jittered backoff before retry number n (1-based).
// retryAfter is the server's Retry-After hint, if any; it raises the
// computed delay but stays capped by MaxDelay.
func (p *RetryPolicy) delay(n int, retryAfter time.Duration) time.Duration {
	base, max, seed := 50*time.Millisecond, 2*time.Second, uint64(1)
	if p != nil {
		if p.BaseDelay > 0 {
			base = p.BaseDelay
		}
		if p.MaxDelay > 0 {
			max = p.MaxDelay
		}
		if p.Seed != 0 {
			seed = p.Seed
		}
	}
	d := base << (n - 1)
	if d > max || d <= 0 {
		d = max
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > max {
		d = max
	}
	// Full jitter on the upper half: [d/2, d). Synchronized clients
	// retrying in lockstep would re-create the very overload that
	// failed them.
	var f float64
	if p != nil {
		p.once.Do(func() { p.rand = rng.New(seed) })
		p.mu.Lock()
		f = p.rand.Float64()
		p.mu.Unlock()
	} else {
		f = 0.5
	}
	return d/2 + time.Duration(f*float64(d/2))
}

// Breaker state values, exposed for the state gauge.
const (
	BreakerClosed   = 0
	BreakerOpen     = 1
	BreakerHalfOpen = 2
)

// Breaker is a consecutive-failure circuit breaker. Closed passes all
// requests; Threshold consecutive failures open it; after Cooldown it
// goes half-open and admits one probe at a time — a probe success
// closes it, a probe failure re-opens it.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker. Default 5.
	Threshold int
	// Cooldown is how long the breaker stays open before probing.
	// Default 2s.
	Cooldown time.Duration

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 2 * time.Second
	}
	return b.Cooldown
}

// State returns the current breaker state (possibly transitioning
// open → half-open if the cooldown has passed).
func (b *Breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.cooldown() {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// allow reports whether a request may be sent now.
func (b *Breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = BreakerHalfOpen
		fallthrough
	default: // half-open: one probe in flight at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a definitive server answer: the path works.
func (b *Breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// onFailure records a transport-level failure or gateway 5xx.
func (b *Breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold() {
		b.state = BreakerOpen
		b.openedAt = time.Now()
	}
	b.probing = false
}

// reg returns the client's metrics registry.
func (c *Client) reg() *obs.Registry {
	if c.Reg != nil {
		return c.Reg
	}
	return obs.Default
}

func (c *Client) noteBreaker() {
	if c.Breaker == nil {
		return
	}
	c.reg().Gauge(MetricClientBreakerState).Set(int64(c.Breaker.State()))
}

// retryableStatus reports whether an HTTP status indicates a transient
// condition worth retrying. 500 is deliberately absent: the server
// uses it for detected data loss (checksum mismatch), which a retry
// will not fix.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// parseRetryAfter reads a Retry-After header in seconds form.
func parseRetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// roundTrip sends one logical request. body is the full request body
// (replayable across attempts); extra headers are applied to every
// attempt. When retryable, transient failures — transport errors,
// truncated response bodies, 502/503/504 — are retried with jittered
// backoff; otherwise the request is sent once. Both paths pass the
// circuit breaker. The returned response's body is fully read into
// memory, so reading it cannot fail mid-way.
func (c *Client) roundTrip(ctx context.Context, method, path, contentType string, body []byte, header http.Header, retryable bool) (*http.Response, error) {
	attempts := 1
	if retryable {
		attempts = c.Retry.attempts()
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.reg().Counter(MetricClientRetries).Inc()
		}
		if c.Breaker != nil && !c.Breaker.allow() {
			c.noteBreaker()
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", ErrCircuitOpen, lastErr)
			}
			return nil, ErrCircuitOpen
		}
		resp, err := c.attemptOnce(ctx, method, path, contentType, body, header)
		if err == nil && !retryableStatus(resp.StatusCode) {
			if c.Breaker != nil {
				c.Breaker.onSuccess()
				c.noteBreaker()
			}
			return resp, nil
		}
		// Transient failure: record it, back off, go again.
		var retryAfter time.Duration
		if err == nil {
			retryAfter = parseRetryAfter(resp)
			lastErr = fmt.Errorf("server: HTTP %d", resp.StatusCode)
			resp.Body.Close()
		} else {
			lastErr = err
		}
		if c.Breaker != nil {
			c.Breaker.onFailure()
			c.noteBreaker()
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
		if attempt < attempts {
			t := time.NewTimer(c.Retry.delay(attempt, retryAfter))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
	}
	return nil, fmt.Errorf("server: request failed after %d attempts: %w", attempts, lastErr)
}

// attemptOnce sends a single HTTP attempt and buffers the response
// body, so a body truncated by a dying connection surfaces here as a
// retryable error rather than in the caller's decoder.
func (c *Client) attemptOnce(ctx context.Context, method, path, contentType string, body []byte, header http.Header) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("server: reading response body: %w", err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	return resp, nil
}

// Ready probes GET /readyz with a single direct request (no retry, no
// breaker): readiness is a question about right now.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server not ready (HTTP %d)", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&out); err != nil {
		return fmt.Errorf("server: parsing readiness: %w", err)
	}
	if out["status"] != "ready" {
		return fmt.Errorf("server not ready: %v", out)
	}
	return nil
}

// WaitReady polls /readyz until the server is ready, ctx is done, or
// timeout passes — the client-side half of orderly startup, so a tool
// launched alongside the server does not race its first request
// against the listener coming up.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var lastErr error
	for {
		probe, probeCancel := context.WithTimeout(ctx, time.Second)
		lastErr = c.Ready(probe)
		probeCancel()
		if lastErr == nil {
			return nil
		}
		t := time.NewTimer(100 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("server not ready after %v: %w", timeout, lastErr)
		case <-t.C:
		}
	}
}
