package server

import (
	"context"
	"net/http"
	"sort"

	"github.com/mmm-go/mmm/internal/version"
)

// VersionInfo is the response of GET /api/version: the build stamp
// plus the storage policy knobs a peer must agree on before mixing
// data. The cluster router preflights every member against it and
// refuses mixed-version or mismatched-codec memberships — a replica
// set where one node writes gzip and another writes raw would destroy
// the byte-identical-recovery guarantee silently.
type VersionInfo struct {
	// Version is the build's version stamp (version.Version).
	Version string `json:"version"`
	// Codec is the codec ID new saves are stored with ("none" = raw).
	Codec string `json:"codec"`
	// Dedup reports whether saves go through the chunk-level CAS layer.
	Dedup bool `json:"dedup"`
	// Approaches lists the approach names this node serves, sorted.
	Approaches []string `json:"approaches"`
}

// VersionInfo snapshots this service's identity for the preflight.
func (s *Service) VersionInfo() VersionInfo {
	names := s.ApproachNames()
	sort.Strings(names)
	return VersionInfo{
		Version:    version.Version,
		Codec:      s.EffectiveCodec(),
		Dedup:      s.Dedup(),
		Approaches: names,
	}
}

// Compatible reports whether two nodes can serve in one replica set:
// same build, same codec, same dedup policy.
func (v VersionInfo) Compatible(o VersionInfo) bool {
	return v.Version == o.Version && v.Codec == o.Codec && v.Dedup == o.Dedup
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.VersionInfo())
}

// Version fetches a server's build and storage-policy stamp.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var out VersionInfo
	err := c.getJSON(ctx, "/api/version", &out)
	return out, err
}
