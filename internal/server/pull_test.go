package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/netchaos"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// newDedupRig starts a server whose approaches write through the CAS
// layer, so saved sets are chunk-addressed and pull-servable.
func newDedupRig(t *testing.T, reg *obs.Registry) (*Client, core.Stores) {
	t.Helper()
	stores := core.NewMemStores()
	if reg == nil {
		reg = obs.New()
	}
	ts := httptest.NewServer(NewWithMetrics(stores, reg, core.WithDedup()))
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL, Reg: obs.New()}, stores
}

// memPullCache returns a PullCache over a fresh in-memory store.
func memPullCache() *PullCache {
	return NewPullCache(blobstore.New(backend.NewMem(), latency.CostModel{}, nil))
}

func TestPullRecoverRoundTrip(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	c.Cache = memPullCache()
	set := testSet(t, 12)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("pull recovery lost data")
	}
	if n := c.Reg.Counter(MetricPullChunksFetched).Value(); n == 0 {
		t.Fatal("recovery did not use the pull protocol")
	}
	if n := c.Reg.Counter(MetricPullFallbacks).Value(); n != 0 {
		t.Fatalf("%s = %d, want 0", MetricPullFallbacks, n)
	}

	// Second recovery: every chunk is cached, nothing fetched.
	fetched := c.Reg.Counter(MetricPullChunksFetched).Value()
	got2, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got2) {
		t.Fatal("cached pull recovery lost data")
	}
	if n := c.Reg.Counter(MetricPullChunksFetched).Value(); n != fetched {
		t.Fatalf("warm re-pull fetched %d chunks, want 0", n-fetched)
	}
	if n := c.Reg.Counter(MetricPullCacheHits).Value(); n == 0 {
		t.Fatal("warm re-pull recorded no cache hits")
	}
}

func TestPullRecoverWithoutCache(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	set := testSet(t, 6)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("cacheless pull recovery lost data")
	}
	if n := c.Reg.Counter(MetricPullChunksFetched).Value(); n == 0 {
		t.Fatal("recovery did not use the pull protocol")
	}
}

// TestPullWarmCacheFetchesOnlyChangedChunks is the protocol's point:
// re-pulling a lightly mutated set transfers O(changed chunks), not
// O(set).
func TestPullWarmCacheFetchesOnlyChangedChunks(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	c.Cache = memPullCache()
	// Realistically sized models (~19 KB each), so the fixed manifest
	// cost does not dominate the byte accounting being asserted.
	set, err := core.NewModelSet(nn.FFNN("pull-warm", 64, []int{64}, 8), 16, 77)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(ctx, "baseline", res1.SetID); err != nil {
		t.Fatal(err)
	}
	coldBytes := c.Reg.Counter(MetricPullBytes).Value()
	coldChunks := c.Reg.Counter(MetricPullChunksFetched).Value()

	// Mutate exactly one model and save the result as a new set.
	mutated, err := core.NewModelSet(nn.FFNN("pull-warm", 64, []int{64}, 8), 16, 77)
	if err != nil {
		t.Fatal(err)
	}
	pb := mutated.Models[3].AppendParamBytes(nil)
	for i := range pb {
		pb[i] ^= 0x5a
	}
	if _, err := mutated.Models[3].SetParamBytes(pb); err != nil {
		t.Fatal(err)
	}
	res2, err := c.Save(ctx, "baseline", mutated, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(ctx, "baseline", res2.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !mutated.Equal(got) {
		t.Fatal("warm pull recovery lost data")
	}
	warmChunks := c.Reg.Counter(MetricPullChunksFetched).Value() - coldChunks
	warmBytes := c.Reg.Counter(MetricPullBytes).Value() - coldBytes
	if warmChunks != 1 {
		t.Fatalf("warm re-pull fetched %d chunks, want 1 (only the mutated model)", warmChunks)
	}
	// The acceptance bar: changed chunks + recipe under 10% of the
	// full-set transfer.
	if coldBytes == 0 || warmBytes*10 > coldBytes {
		t.Fatalf("warm re-pull moved %d bytes vs %d cold — not O(changed chunks)", warmBytes, coldBytes)
	}
}

func TestPullSelectiveRecovery(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	c.Cache = memPullCache()
	set := testSet(t, 10)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := c.RecoverModels(ctx, "baseline", res.SetID, []int{2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Models) != 2 {
		t.Fatalf("recovered %d models, want 2", len(pr.Models))
	}
	for _, idx := range []int{2, 7} {
		if !pr.Models[idx].ParamsEqual(set.Models[idx]) {
			t.Fatalf("model %d recovered incorrectly", idx)
		}
	}
	// Per-model chunking: two models = two chunks, nothing more.
	if n := c.Reg.Counter(MetricPullChunksFetched).Value(); n != 2 {
		t.Fatalf("selective pull fetched %d chunks, want 2", n)
	}
	if _, err := c.RecoverModels(ctx, "baseline", res.SetID, []int{99}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestPullFallsBackToMultipart covers the compatibility paths: sets
// saved without dedup, approaches without a single params blob, and
// servers that predate the protocol must all recover via the multipart
// path, transparently.
func TestPullFallsBackToMultipart(t *testing.T) {
	ctx := context.Background()

	t.Run("non-dedup store", func(t *testing.T) {
		c, _ := newTestRig(t)
		c.Reg = obs.New()
		set := testSet(t, 5)
		res, err := c.Save(ctx, "baseline", set, "", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Recover(ctx, "baseline", res.SetID)
		if err != nil {
			t.Fatal(err)
		}
		if !set.Equal(got) {
			t.Fatal("fallback recovery lost data")
		}
		if n := c.Reg.Counter(MetricPullFallbacks).Value(); n != 1 {
			t.Fatalf("%s = %d, want 1", MetricPullFallbacks, n)
		}
	})

	t.Run("per-model approach", func(t *testing.T) {
		c, _ := newDedupRig(t, nil)
		set := testSet(t, 4)
		res, err := c.Save(ctx, "mmlib", set, "", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Recover(ctx, "mmlib", res.SetID)
		if err != nil {
			t.Fatal(err)
		}
		if !set.Equal(got) {
			t.Fatal("mmlib fallback recovery lost data")
		}
		if n := c.Reg.Counter(MetricPullFallbacks).Value(); n != 1 {
			t.Fatalf("%s = %d, want 1", MetricPullFallbacks, n)
		}
	})

	t.Run("pre-protocol server", func(t *testing.T) {
		// A mux without the cas routes answers the recipe probe with a
		// plain 404 — no JSON envelope, no code.
		stores := core.NewMemStores()
		api := New(stores)
		old := http.NewServeMux()
		old.HandleFunc("GET /api/{approach}/sets/{id}/params", api.handleRecover)
		old.HandleFunc("POST /api/{approach}/sets", api.handleSave)
		ts := httptest.NewServer(old)
		t.Cleanup(ts.Close)
		c := &Client{BaseURL: ts.URL, Reg: obs.New()}

		set := testSet(t, 5)
		res, err := c.Save(ctx, "baseline", set, "", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Recover(ctx, "baseline", res.SetID)
		if err != nil {
			t.Fatal(err)
		}
		if !set.Equal(got) {
			t.Fatal("old-server fallback recovery lost data")
		}
	})

	t.Run("unknown set stays not-found", func(t *testing.T) {
		c, _ := newDedupRig(t, nil)
		_, err := c.Recover(ctx, "baseline", "bl-999999")
		if !errors.Is(err, core.ErrSetNotFound) {
			t.Fatalf("recovering unknown set: %v, want ErrSetNotFound", err)
		}
	})
}

// pullManifestFor fetches and decodes a set's pull manifest directly.
func pullManifestFor(t *testing.T, c *Client, approach, setID string) *PullManifest {
	t.Helper()
	resp, err := http.Get(c.BaseURL + "/api/cas/recipe/" + approach + "/" + setID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recipe endpoint: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodePullManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPullRecipeEndpointEnvelopes(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	set := testSet(t, 8)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := pullManifestFor(t, c, "baseline", res.SetID)
	if m.NumModels != 8 || len(m.Chunks) != 8 {
		t.Fatalf("manifest: %d models, %d chunks, want 8 and 8", m.NumModels, len(m.Chunks))
	}
	if m.Size != int64(set.Arch.ParamBytes())*8 {
		t.Fatalf("manifest size = %d", m.Size)
	}

	check := func(path, wantCode string, wantStatus int) {
		t.Helper()
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: HTTP %d, want %d", path, resp.StatusCode, wantStatus)
		}
		var e httpError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("GET %s: not a JSON envelope: %v", path, err)
		}
		if e.Code != wantCode {
			t.Fatalf("GET %s: code %q, want %q", path, e.Code, wantCode)
		}
	}
	check("/api/cas/recipe/baseline/no-such-set", codeSetNotFound, http.StatusNotFound)
	check("/api/cas/recipe/mmlib/"+saveVia(t, c, "mmlib"), codePullUnavailable, http.StatusNotFound)

	// A set saved without dedup on the same server: the recipe probe
	// says pull_unavailable, not not-found.
	plain, stores := newTestRig(t)
	_ = stores
	set2 := testSet(t, 3)
	res2, err := plain.Save(ctx, "baseline", set2, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(plain.BaseURL + "/api/cas/recipe/baseline/" + res2.SetID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e httpError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || e.Code != codePullUnavailable {
		t.Fatalf("non-dedup recipe: HTTP %d code %q, want 404 %q", resp.StatusCode, e.Code, codePullUnavailable)
	}
}

// saveVia saves a small set under the approach and returns its ID.
func saveVia(t *testing.T, c *Client, approach string) string {
	t.Helper()
	res, err := c.Save(context.Background(), approach, testSet(t, 3), "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.SetID
}

func TestChunkEndpointEdgeCases(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	set := testSet(t, 4)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := pullManifestFor(t, c, "baseline", res.SetID)
	ch := m.Chunks[0]
	url := fmt.Sprintf("%s/api/cas/chunk/%s?s=%d", c.BaseURL, ch.Hash, ch.Size)

	get := func(rangeHeader string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rangeHeader != "" {
			req.Header.Set("Range", rangeHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Whole chunk: body must be the logical bytes of the first model.
	resp := get("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk GET: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := set.Models[0].AppendParamBytes(nil)
	if string(body) != string(want) {
		t.Fatal("chunk body is not the model's parameter bytes")
	}

	// Mid-chunk range: exactly what a resume asks for.
	resp = get(fmt.Sprintf("bytes=%d-", ch.Size/2))
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("ranged chunk GET: HTTP %d, want 206", resp.StatusCode)
	}
	if start, ok := contentRangeStart(resp.Header.Get("Content-Range")); !ok || start != ch.Size/2 {
		t.Fatalf("Content-Range = %q", resp.Header.Get("Content-Range"))
	}
	part, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(part) != string(want[ch.Size/2:]) {
		t.Fatal("ranged chunk body mismatch")
	}

	// Range past EOF: 416, not data.
	resp = get(fmt.Sprintf("bytes=%d-", ch.Size+10))
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("past-EOF range: HTTP %d, want 416", resp.StatusCode)
	}

	// Overlapping multi-range: served as multipart/byteranges with both
	// parts intact.
	resp = get("bytes=0-9,5-14")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("multi-range: HTTP %d, want 206", resp.StatusCode)
	}
	if mt := resp.Header.Get("Content-Type"); !strings.HasPrefix(mt, "multipart/byteranges") {
		t.Fatalf("multi-range content type = %q", mt)
	}

	// Unknown digest: 404 with a JSON envelope.
	fake := strings.Repeat("ab", 32)
	resp2, err := http.Get(fmt.Sprintf("%s/api/cas/chunk/%s?s=64", c.BaseURL, fake))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: HTTP %d, want 404", resp2.StatusCode)
	}
	var e httpError
	if err := json.NewDecoder(resp2.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("unknown digest: not a JSON envelope (%v, %+v)", err, e)
	}

	// Malformed digest and missing size are client errors.
	for _, bad := range []string{
		"/api/cas/chunk/nothex?s=64",
		"/api/cas/chunk/" + strings.Repeat("AB", 32) + "?s=64", // uppercase
		"/api/cas/chunk/" + ch.Hash,                            // no ?s=
		fmt.Sprintf("/api/cas/chunk/%s?s=-3", ch.Hash),
	} {
		resp, err := http.Get(c.BaseURL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
}

// corruptingTransport flips a byte in the body of the first N chunk
// responses, leaving everything else untouched.
type corruptingTransport struct {
	base    http.RoundTripper
	remain  int
	touched int
}

func (tr *corruptingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil || !strings.Contains(req.URL.Path, "/api/cas/chunk/") || tr.remain <= 0 {
		return resp, err
	}
	tr.remain--
	tr.touched++
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		body[0] ^= 0xff
	}
	resp.Body = io.NopCloser(strings.NewReader(string(body)))
	return resp, nil
}

// TestPullDigestMismatchDiscardsAndRefetches: a chunk body that does
// not hash to its address is discarded and refetched from scratch; the
// bad bytes never reach the cache or the caller.
func TestPullDigestMismatchDiscardsAndRefetches(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	c.Cache = memPullCache()
	c.Retry = fastRetry()
	tr := &corruptingTransport{remain: 1}
	c.HTTP = &http.Client{Transport: tr}

	set := testSet(t, 6)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatalf("recover through corruption: %v", err)
	}
	if !set.Equal(got) {
		t.Fatal("recovery returned corrupt data")
	}
	if tr.touched != 1 {
		t.Fatalf("corrupted %d responses, want 1", tr.touched)
	}
	if n := c.Reg.Counter(MetricPullDigestMismatches).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", MetricPullDigestMismatches, n)
	}
	// Every cached chunk must round-trip its digest (PutChunk verifies
	// on write; Get verifies on read — a poisoned cache would fail).
	m := pullManifestFor(t, c, "baseline", res.SetID)
	for _, ch := range m.Chunks {
		if _, err := c.Cache.Get(ch.Hash, ch.Size); err != nil {
			t.Fatalf("cache holds bad chunk %s: %v", ch.Hash, err)
		}
	}
}

// TestChaosPullResumesMidChunk: a connection reset mid-chunk-body must
// be resumed with a Range request from the received offset — and the
// reassembled set must be byte-identical.
func TestChaosPullResumesMidChunk(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	c.Cache = memPullCache()
	c.Retry = fastRetry()
	c.PullWorkers = 1 // deterministic chunk order for the script

	set := testSet(t, 4)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Script: the recipe GET passes, then the first two chunk transfers
	// are cut mid-body.
	tr := netchaos.NewTransport(nil, netchaos.Config{
		Script: []netchaos.Fault{netchaos.FaultNone, netchaos.FaultTruncate, netchaos.FaultTruncate},
	})
	c.HTTP = &http.Client{Transport: tr}

	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatalf("recover through mid-chunk resets: %v", err)
	}
	if !set.Equal(got) {
		t.Fatal("resumed recovery lost data")
	}
	if n := c.Reg.Counter(MetricPullResumes).Value(); n < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricPullResumes, n)
	}
	if tr.Injected() < 2 {
		t.Fatalf("injected %d faults, want >= 2", tr.Injected())
	}
}

// TestChaosPullThroughBusyBursts: 503 bursts with Retry-After on chunk
// fetches are absorbed by the per-chunk retry loop.
func TestChaosPullThroughBusyBursts(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	c.Cache = memPullCache()
	c.Retry = fastRetry()

	set := testSet(t, 6)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := netchaos.NewTransport(nil, netchaos.Config{
		Seed: 42, ServerBusy: 0.3, MaxFaults: 3,
	})
	c.HTTP = &http.Client{Transport: tr}
	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatalf("recover through 503 bursts: %v", err)
	}
	if !set.Equal(got) {
		t.Fatal("recovery through 503 bursts lost data")
	}
}

func TestDecodePullManifestRejectsDamage(t *testing.T) {
	ctx := context.Background()
	c, _ := newDedupRig(t, nil)
	res, err := c.Save(ctx, "baseline", testSet(t, 4), "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/api/cas/recipe/baseline/" + res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	good, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePullManifest(good); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	var m PullManifest
	if err := json.Unmarshal(good, &m); err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(*PullManifest)) {
		t.Helper()
		bad := m
		bad.Chunks = append([]PullChunk(nil), m.Chunks...)
		f(&bad)
		data, err := json.Marshal(&bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodePullManifest(data); err == nil {
			t.Fatalf("%s: corrupt manifest accepted", name)
		}
	}
	mutate("no models", func(m *PullManifest) { m.NumModels = 0 })
	mutate("size mismatch", func(m *PullManifest) { m.Size++ })
	mutate("no chunks", func(m *PullManifest) { m.Chunks = nil; m.Size = 0 })
	mutate("bad digest", func(m *PullManifest) { m.Chunks[0].Hash = "xyz" })
	mutate("uppercase digest", func(m *PullManifest) {
		m.Chunks[0].Hash = strings.ToUpper(m.Chunks[0].Hash)
	})
	mutate("chunk overrun", func(m *PullManifest) { m.Chunks[0].Size = m.Size + 1 })
	mutate("short sum", func(m *PullManifest) { m.Chunks = m.Chunks[:len(m.Chunks)-1] })
	mutate("zero chunk", func(m *PullManifest) { m.Chunks[0].Size = 0 })
	mutate("no arch", func(m *PullManifest) { m.Arch = nil })
	if _, err := DecodePullManifest([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}
