package server

import (
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/obs"
)

// Service is the store-service layer of a node: the management
// approaches over their stores, the idempotency journal, and the
// save-time policy (codec, dedup) — everything about WHAT the node
// stores, with no opinion about how requests arrive. Server wraps a
// Service in the HTTP transport (mux routing plus the Gate
// middleware); the cluster router proxies to remote Services over the
// wire. The split is what lets transport-level guarantees — per-route
// metrics, body caps, deadlines, drain — apply uniformly to local and
// routed endpoints instead of living tangled inside one handler type.
type Service struct {
	stores     core.Stores
	approaches map[string]core.Approach
	journal    *opJournal
	codecID    string // Config.Codec: "" stores raw
	dedup      bool   // Config.Dedup: chunk-level CAS on saves
}

// NewService builds the store-service layer over stores: the four
// standard approaches under their lower-case names, instrumented into
// reg, configured from cfg (codec, dedup, chunk cache) plus any extra
// core options.
func NewService(stores core.Stores, reg *obs.Registry, cfg Config, opts ...core.Option) *Service {
	if reg == nil {
		reg = obs.Default
	}
	opts = append([]core.Option{core.WithMetrics(reg)}, opts...)
	if cfg.Codec != "" {
		opts = append(opts, core.WithCodec(cfg.Codec))
	}
	if cfg.CacheBytes > 0 {
		opts = append(opts, core.WithChunkCache(cfg.CacheBytes))
	}
	if cfg.Dedup {
		opts = append(opts, core.WithDedup())
	}
	return &Service{
		stores: stores,
		approaches: map[string]core.Approach{
			"baseline":   core.NewBaseline(stores, opts...),
			"update":     core.NewUpdate(stores, opts...),
			"provenance": core.NewProvenance(stores, opts...),
			"mmlib":      core.NewMMlibBase(stores, opts...),
		},
		journal: newOpJournal(stores.Docs),
		codecID: cfg.Codec,
		dedup:   cfg.Dedup,
	}
}

// Stores exposes the underlying stores (read-only access for callers
// like the sync path that need the CAS layer).
func (s *Service) Stores() core.Stores { return s.stores }

// Approach returns the named approach, or nil.
func (s *Service) Approach(name string) core.Approach { return s.approaches[name] }

// ApproachNames lists the registered approach names, unsorted.
func (s *Service) ApproachNames() []string {
	names := make([]string, 0, len(s.approaches))
	for n := range s.approaches {
		names = append(names, n)
	}
	return names
}

// EffectiveCodec is the codec ID new saves are stored with, "none"
// when unconfigured, so clients can assert against a stable name.
func (s *Service) EffectiveCodec() string {
	if s.codecID == "" {
		return "none"
	}
	return s.codecID
}

// Dedup reports whether saves go through the chunk-level CAS layer.
func (s *Service) Dedup() bool { return s.dedup }

// HasSet reports whether approach a locally stores setID, resolved
// through the approach's set listing.
func (s *Service) HasSet(a core.Approach, setID string) (bool, error) {
	l, ok := a.(interface{ SetIDs() ([]string, error) })
	if !ok {
		return false, nil
	}
	ids, err := l.SetIDs()
	if err != nil {
		return false, err
	}
	for _, id := range ids {
		if id == setID {
			return true, nil
		}
	}
	return false, nil
}

// Drainer is anything with one-way drain semantics — Server and the
// cluster router both satisfy it, so ServeListener's graceful shutdown
// works for either.
type Drainer interface {
	// BeginDrain flips the server into drain mode: readiness fails and
	// new work is rejected while in-flight requests finish.
	BeginDrain()
}

// normalizeConfig applies Config defaults shared by Server and Router.
func normalizeConfig(cfg Config) Config {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return cfg
}
