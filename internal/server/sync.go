// Cluster set synchronization: POST /api/cluster/sync tells a node to
// copy one set from a peer into its own store. The destination drives
// the transfer itself over the existing pull protocol, diffing the
// peer's chunk recipe against its own content-addressed store — so a
// rebalance after a node rejoins moves only the chunk bytes the
// destination is actually missing, and a corrupt chunk can never enter
// the store (PutChunk re-verifies the digest).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/obs"
)

// SyncRequest is the JSON body of POST /api/cluster/sync.
type SyncRequest struct {
	// Approach names the namespace the set lives in (e.g. "baseline").
	Approach string `json:"approach"`
	// SetID is the set to copy.
	SetID string `json:"set_id"`
	// From is the base URL of the peer that has the set.
	From string `json:"from"`
}

// SyncReport is the response of a sync: what moved and what the local
// chunk store already had. The wire-efficiency claim of rebalancing —
// only missing chunks cross the network — is measurable here:
// ChunkCacheHits counts recipe chunks already present locally,
// BytesFetched counts what actually crossed the wire.
type SyncReport struct {
	Approach string `json:"approach"`
	SetID    string `json:"set_id"`
	// AlreadyPresent is true when the node had the set and did nothing.
	AlreadyPresent bool `json:"already_present"`
	// ChunksFetched / ChunkCacheHits / BytesFetched describe the pull:
	// chunks downloaded, chunks served from the local CAS, and payload
	// bytes received.
	ChunksFetched  int64 `json:"chunks_fetched"`
	ChunkCacheHits int64 `json:"chunk_cache_hits"`
	BytesFetched   int64 `json:"bytes_fetched"`
	// BytesWritten is the storage the local save consumed (small when
	// the chunks were already present — just recipe and metadata).
	BytesWritten int64 `json:"bytes_written"`
	// Fallback is true when the set could not be pulled chunk-wise and
	// was copied over the multipart path instead (e.g. a derived set,
	// which has no single chunk-addressed params blob).
	Fallback bool `json:"fallback"`
}

// SyncSet copies one set from the peer at from into this service's
// store, preserving the set ID. Derived sets are synchronized
// "flattened": the peer recovers the full parameter state and the
// local save stores it as a root set under the same ID — parameters
// stay byte-identical, lineage metadata is not carried over (the
// surviving replicas still hold it).
//
// Syncing is idempotent: a set already present locally (including one
// that appeared concurrently) reports AlreadyPresent instead of
// failing, so rebalancers retry freely.
func (s *Service) SyncSet(ctx context.Context, approach, setID, from string) (SyncReport, error) {
	report := SyncReport{Approach: approach, SetID: setID}
	a := s.approaches[approach]
	if a == nil {
		return report, fmt.Errorf("server: unknown approach %q", approach)
	}
	if err := core.ValidateSetID(setID); err != nil {
		return report, err
	}
	if have, err := s.HasSet(a, setID); err != nil {
		return report, err
	} else if have {
		report.AlreadyPresent = true
		return report, nil
	}

	// A private registry isolates this sync's pull counters so the
	// report reflects exactly this transfer. The local blob store IS
	// the pull cache: chunks the node already holds are never fetched,
	// and fetched chunks land directly in the CAS, where the save
	// below finds them — the dedup diff and the wire diff are the same
	// diff.
	reg := obs.New()
	peer := &Client{BaseURL: from, Reg: reg, Cache: NewPullCache(s.stores.Blobs)}
	set, err := peer.Recover(ctx, approach, setID)
	if err != nil {
		return report, fmt.Errorf("server: sync pull of %s/%s from %s: %w", approach, setID, from, err)
	}
	report.ChunksFetched = reg.Counter(MetricPullChunksFetched).Value()
	report.ChunkCacheHits = reg.Counter(MetricPullCacheHits).Value()
	report.BytesFetched = reg.Counter(MetricPullBytes).Value()
	report.Fallback = reg.Counter(MetricPullFallbacks).Value() > 0

	res, err := a.SaveContext(ctx, core.SaveRequest{Set: set, SetID: setID})
	if errors.Is(err, core.ErrSetExists) {
		// Lost a race with another writer; the set is there either way.
		report.AlreadyPresent = true
		return report, nil
	}
	if err != nil {
		return report, fmt.Errorf("server: sync save of %s/%s: %w", approach, setID, err)
	}
	report.BytesWritten = res.BytesWritten
	return report, nil
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	var req SyncRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	if req.Approach == "" || req.SetID == "" || req.From == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sync needs approach, set_id, and from"))
		return
	}
	report, err := s.SyncSet(r.Context(), req.Approach, req.SetID, req.From)
	if err != nil {
		writeError(w, syncStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// syncStatus maps a sync error onto an HTTP status: a source that no
// longer has the set is the caller's stale view (404); everything else
// is a 502 — the destination could not complete the copy, usually
// because the peer is unreachable, and the rebalancer should retry.
func syncStatus(err error) int {
	if errors.Is(err, core.ErrSetNotFound) {
		return http.StatusNotFound
	}
	return http.StatusBadGateway
}

// Sync asks the server to copy a set from a peer (the destination
// pulls). Rebalancers call it against the node that should gain the
// set.
func (c *Client) Sync(ctx context.Context, approach, setID, from string) (*SyncReport, error) {
	var out SyncReport
	if err := c.postJSON(ctx, "/api/cluster/sync",
		SyncRequest{Approach: approach, SetID: setID, From: from}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
