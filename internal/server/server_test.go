package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/env"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// newTestRig starts an in-process server and returns a client for it.
func newTestRig(t *testing.T) (*Client, core.Stores) {
	t.Helper()
	stores := core.NewMemStores()
	ts := httptest.NewServer(New(stores))
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, stores
}

func testSet(t *testing.T, n int) *core.ModelSet {
	t.Helper()
	set, err := core.NewModelSet(nn.FFNN("srv-test", 4, []int{6}, 1), n, 77)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestHealthAndApproaches(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestRig(t)
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	names, err := c.Approaches(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"baseline", "mmlib", "provenance", "update"}
	if len(names) != len(want) {
		t.Fatalf("approaches = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("approaches = %v, want %v", names, want)
		}
	}
}

func TestSaveRecoverRoundTripOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestRig(t)
	set := testSet(t, 12)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetID == "" || res.BytesWritten == 0 {
		t.Fatalf("save result = %+v", res)
	}
	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("HTTP round trip lost data")
	}
}

func TestSelectiveRecoveryOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestRig(t)
	set := testSet(t, 10)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := c.RecoverModels(ctx, "baseline", res.SetID, []int{2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Models) != 2 {
		t.Fatalf("recovered %d models, want 2", len(pr.Models))
	}
	for _, idx := range []int{2, 7} {
		if !set.Models[idx].ParamsEqual(pr.Models[idx]) {
			t.Fatalf("model %d wrong over HTTP", idx)
		}
	}
}

func TestUpdateChainOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestRig(t)
	set := testSet(t, 8)
	res1, err := c.Save(ctx, "update", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Change one model, save the derived set.
	set.Models[3].Params()[0].Tensor.Data[0] += 0.25
	res2, err := c.Save(ctx, "update", set, res1.SetID, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.BytesWritten >= res1.BytesWritten {
		t.Fatalf("derived save %d B not below full save %d B", res2.BytesWritten, res1.BytesWritten)
	}
	got, err := c.Recover(ctx, "update", res2.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("derived chain wrong over HTTP")
	}
	chain, err := c.Info(ctx, "update", res2.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].SetID != res2.SetID || chain[1].Kind != "full" {
		t.Fatalf("lineage = %+v", chain)
	}
}

func TestProvenanceOverHTTP(t *testing.T) {
	// The full remote flow: the client registers the dataset, trains
	// locally, uploads provenance; the server recovers by retraining.
	ctx := context.Background()
	c, _ := newTestRig(t)
	set := testSet(t, 5)
	res1, err := c.Save(ctx, "provenance", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := dataset.Spec{
		Kind: dataset.KindBattery, CellID: 2, Cycle: 1, SoH: 0.98,
		Samples: 40, NoiseStd: 0.002, Seed: 7,
	}
	dsID, err := c.PutDataset(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := nn.TrainConfig{Epochs: 2, BatchSize: 10, LearningRate: 0.05, Loss: "mse", Seed: 11}
	if _, err := nn.Train(set.Models[2], data, cfg); err != nil {
		t.Fatal(err)
	}
	train := &core.TrainInfo{Config: cfg, Environment: env.Capture(), PipelineCode: core.PipelineCode}
	train.Config.Seed = 0 // per-model seed travels in the update record
	updates := []core.ModelUpdate{{ModelIndex: 2, DatasetID: dsID, Seed: 11}}
	res2, err := c.Save(ctx, "provenance", set, res1.SetID, updates, train)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(ctx, "provenance", res2.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("provenance recovery over HTTP not bit-exact")
	}
	ids, err := c.Datasets(ctx)
	if err != nil || len(ids) != 1 {
		t.Fatalf("datasets = %v, %v", ids, err)
	}
}

func TestVerifyAndPruneOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestRig(t)
	set := testSet(t, 4)
	res1, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	issues, err := c.Verify(ctx, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("clean store reports %v", issues)
	}
	report, err := c.Prune(ctx, "baseline", []string{res2.SetID})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Deleted) != 1 || report.Deleted[0] != res1.SetID {
		t.Fatalf("prune report = %+v", report)
	}
	ids, err := c.List(ctx, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != res2.SetID {
		t.Fatalf("sets after prune = %v", ids)
	}
}

func TestHTTPErrors(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestRig(t)
	if _, err := c.List(ctx, "hologram"); err == nil || !strings.Contains(err.Error(), "unknown approach") {
		t.Errorf("unknown approach err = %v", err)
	}
	if _, err := c.Recover(ctx, "baseline", "bl-404"); !errors.Is(err, core.ErrSetNotFound) {
		t.Errorf("recovery of unknown set: err = %v, want core.ErrSetNotFound", err)
	}
	if _, err := c.Info(ctx, "baseline", "bl-404"); err == nil {
		t.Error("info of unknown set accepted")
	}
	if _, err := c.RecoverModels(ctx, "baseline", "bl-404", []int{0}); !errors.Is(err, core.ErrSetNotFound) {
		t.Errorf("selective recovery of unknown set: err = %v, want core.ErrSetNotFound", err)
	}
	if _, err := c.PutDataset(ctx, dataset.Spec{Kind: "junk"}); err == nil {
		t.Error("invalid dataset spec accepted")
	}
	if _, err := c.Prune(ctx, "baseline", []string{"bl-404"}); err == nil {
		t.Error("prune with unknown keep accepted")
	}
	// Save with mismatched params length must be rejected.
	set := testSet(t, 3)
	set.Models = set.Models[:2] // manifest will claim 2 but we forge NumModels below
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatalf("well-formed save rejected: %v (%+v)", err, res)
	}
}

// newRawRig starts a server whose raw blob backend the test can reach
// underneath the checksumming store, to corrupt bytes in place.
func newRawRig(t *testing.T) (*Client, core.Stores, *backend.Mem) {
	t.Helper()
	blobBE := backend.NewMem()
	stores := core.Stores{
		Docs:     docstore.New(backend.NewMem(), latency.CostModel{}, nil),
		Blobs:    blobstore.New(blobBE, latency.CostModel{}, nil),
		Datasets: dataset.NewRegistry(),
	}
	ts := httptest.NewServer(New(stores))
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, stores, blobBE
}

func TestChecksumMismatchOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, _, blobBE := newRawRig(t)
	set := testSet(t, 4)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte of the parameter blob underneath the store.
	key := "baseline/" + res.SetID + "/params.bin"
	raw, err := blobBE.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := blobBE.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	_, err = c.Recover(ctx, "baseline", res.SetID)
	if !errors.Is(err, core.ErrChecksumMismatch) {
		t.Fatalf("recover of corrupt set: err = %v, want core.ErrChecksumMismatch", err)
	}
	// Bit rot is the server's fault, not the request's.
	if !strings.Contains(err.Error(), "HTTP 500") {
		t.Errorf("checksum mismatch reported as %v, want HTTP 500", err)
	}
}

func TestDuOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, stores, _ := newRawRig(t)
	// Real-size models so chunk sharing dwarfs recipe overhead.
	set, err := core.NewModelSet(nn.FFNN48(), 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Save(ctx, "baseline", set, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Two deduplicated saves of the same content next to the raw one,
	// as a CLI running with -dedup against this store would write.
	dedup := core.NewBaseline(stores, core.WithDedup())
	for i := 0; i < 2; i++ {
		if _, err := dedup.Save(core.SaveRequest{Set: set}); err != nil {
			t.Fatal(err)
		}
	}

	report, duErr := c.Du(ctx)
	if duErr != nil {
		t.Fatal(duErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Sets) != 3 {
		t.Fatalf("du reports %d sets, want 3: %+v", len(report.Sets), report.Sets)
	}
	for _, s := range report.Sets {
		if s.Approach != "baseline" || s.LogicalBytes == 0 || s.PhysicalBytes == 0 {
			t.Errorf("implausible du row %+v", s)
		}
	}
	if report.Chunks == 0 || report.ChunkBytes == 0 {
		t.Errorf("dedup saves left no chunks in du: %+v", report)
	}
	// The second dedup save shares every chunk with the first, so the
	// store holds less than it logically stores.
	if report.PhysicalBytes >= report.LogicalBytes {
		t.Errorf("physical %d >= logical %d despite chunk sharing",
			report.PhysicalBytes, report.LogicalBytes)
	}
	if report.DedupRatioPercent <= 100 {
		t.Errorf("dedup ratio %d%%, want > 100%%", report.DedupRatioPercent)
	}
}

func TestFsckOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, stores, _ := newRawRig(t)
	set := testSet(t, 3)
	if _, err := c.Save(ctx, "baseline", set, "", nil, nil); err != nil {
		t.Fatal(err)
	}

	report, err := c.Fsck(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() || report.Sets != 1 {
		t.Fatalf("fsck of healthy store = %+v", report)
	}

	// Plant an uncommitted blob; fsck must report it as a deletable
	// orphan, and fsck --repair must remove it.
	if err := stores.Blobs.Put("baseline/bl-999999/params.bin", []byte("torn")); err != nil {
		t.Fatal(err)
	}
	report, err = c.Fsck(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Issues) != 1 || !report.Issues[0].Orphan || report.Damaged() {
		t.Fatalf("fsck with planted orphan = %+v", report)
	}
	repaired, err := c.Fsck(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired.Issues) != 1 || !repaired.Issues[0].Repaired {
		t.Fatalf("fsck repair = %+v", repaired)
	}
	if report, err = c.Fsck(ctx, false); err != nil || !report.Clean() {
		t.Fatalf("store after repair = %+v, %v", report, err)
	}
}

func TestSaveRejectsGarbageBody(t *testing.T) {
	_, stores := newTestRig(t)
	srv := httptest.NewServer(New(stores))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/api/baseline/sets", "text/plain",
		strings.NewReader("not multipart"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == 201 {
		t.Fatal("garbage body accepted")
	}
}

// instrumentedMemStores builds in-memory stores whose backends record
// into reg — the same wrapping mmm.OpenDirStoresWith applies on disk.
func instrumentedMemStores(reg *obs.Registry) core.Stores {
	return core.Stores{
		Docs:     docstore.New(backend.Instrument(backend.NewMem(), reg, "docs"), latency.CostModel{}, nil),
		Blobs:    blobstore.New(backend.Instrument(backend.NewMem(), reg, "blobs"), latency.CostModel{}, nil),
		Datasets: dataset.NewRegistry(),
	}
}

// expositionLine matches one Prometheus text-format sample:
// name{labels} value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? ` +
		`(\+Inf|-Inf|NaN|-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?)$`)

func TestMetricsEndpoint(t *testing.T) {
	ctx := context.Background()
	reg := obs.New()
	stores := instrumentedMemStores(reg)
	ts := httptest.NewServer(NewWithMetrics(stores, reg))
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}

	// One save and one full recovery per approach, over the wire.
	approaches := map[string]string{
		"baseline":   "Baseline",
		"update":     "Update",
		"provenance": "Provenance",
		"mmlib":      "MMlib-base",
	}
	for ap := range approaches {
		set := testSet(t, 3)
		res, err := c.Save(ctx, ap, set, "", nil, nil)
		if err != nil {
			t.Fatalf("%s save: %v", ap, err)
		}
		if _, err := c.Recover(ctx, ap, res.SetID); err != nil {
			t.Fatalf("%s recover: %v", ap, err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// The whole exposition must parse line by line.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// TTS and TTR histograms for all four approaches, with the exact
	// operation counts the loop above performed.
	for _, name := range approaches {
		for _, series := range []string{
			fmt.Sprintf("mmm_save_seconds_count{approach=%q} 1", name),
			fmt.Sprintf("mmm_recover_seconds_count{approach=%q} 1", name),
		} {
			if !strings.Contains(text, series) {
				t.Errorf("metrics missing %q", series)
			}
		}
	}

	// Backend traffic flowed through the instrumented backends, and
	// the HTTP middleware counted the requests themselves.
	for _, substr := range []string{
		`mmm_backend_ops_total{op="put",store="blobs"}`,
		`mmm_backend_ops_total{op="get",store="blobs"}`,
		`mmm_backend_ops_total{op="put",store="docs"}`,
		`mmm_backend_write_bytes_total{store="blobs"}`,
		`mmm_backend_read_bytes_total{store="blobs"}`,
		`mmm_http_requests_total{code="201",route="POST /api/{approach}/sets"} 4`,
		`mmm_http_requests_total{code="200",route="GET /api/{approach}/sets/{id}/params"} 4`,
	} {
		if !strings.Contains(text, substr) {
			t.Errorf("metrics missing %q", substr)
		}
	}

	// The client helper fetches the same exposition.
	viaClient, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(viaClient, "mmm_save_seconds_count") {
		t.Error("Client.Metrics missing TTS series")
	}
}

func TestSaveBaseMismatchOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestRig(t)
	set := testSet(t, 4)
	res, err := c.Save(ctx, "update", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A derived save whose set shape disagrees with the base must come
	// back as ErrBaseMismatch across the HTTP boundary.
	smaller := testSet(t, 2)
	_, err = c.Save(ctx, "update", smaller, res.SetID, nil, nil)
	if !errors.Is(err, core.ErrBaseMismatch) {
		t.Fatalf("mismatched derived save error = %v, want ErrBaseMismatch", err)
	}
}

// TestSaveDiskFullReturns507 rehearses a server whose disk fills
// mid-save: the request must come back 507 Insufficient Storage with
// the JSON envelope carrying the no_space code (the client maps it to
// core.ErrNoSpace), the failed save must roll back to nothing, and the
// next save after space frees must succeed.
func TestSaveDiskFullReturns507(t *testing.T) {
	ctx := context.Background()
	fBlob := backend.NewFaulty(backend.NewMem())
	stores := core.Stores{
		Docs:     docstore.New(backend.NewMem(), latency.CostModel{}, nil),
		Blobs:    blobstore.New(fBlob, latency.CostModel{}, nil),
		Datasets: dataset.NewRegistry(),
	}
	ts := httptest.NewServer(New(stores, core.WithDedup()))
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}

	fBlob.FailPutsAfterWith(2, backend.ErrNoSpace)
	_, err := c.Save(ctx, "baseline", testSet(t, 4), "", nil, nil)
	if !errors.Is(err, core.ErrNoSpace) {
		t.Fatalf("disk-full save error = %v, want core.ErrNoSpace", err)
	}
	if !strings.Contains(err.Error(), "HTTP 507") {
		t.Fatalf("disk-full save error = %v, want HTTP 507", err)
	}
	fBlob.FailPutsAfter(-1)

	// Rollback left nothing behind: the store is fsck-clean with no
	// orphans, so no chunk carries a nonzero refcount.
	report, ferr := core.Fsck(stores, core.FsckOptions{})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if !report.Clean() {
		t.Fatalf("store not clean after rolled-back disk-full save:\n%v", report.Issues)
	}

	// Space freed: service resumes.
	set := testSet(t, 4)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatalf("save after space freed: %v", err)
	}
	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil || !set.Equal(got) {
		t.Fatalf("recover after disk-full episode: %v", err)
	}
}

func TestConfigCacheBytesAttachesServingCache(t *testing.T) {
	stores := core.NewMemStores()
	NewWithConfig(stores, obs.New(), Config{CacheBytes: 4 << 20})
	c := cas.For(stores.Blobs).ChunkCache()
	if c == nil {
		t.Fatal("Config.CacheBytes attached no chunk cache to the store")
	}
	if c.MaxBytes() != 4<<20 {
		t.Fatalf("cache budget = %d, want %d", c.MaxBytes(), 4<<20)
	}

	// Zero leaves a fresh store uncached.
	plain := core.NewMemStores()
	NewWithConfig(plain, obs.New(), Config{})
	if cas.For(plain.Blobs).ChunkCache() != nil {
		t.Fatal("zero CacheBytes attached a cache")
	}
}
