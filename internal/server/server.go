// Package server exposes multi-model management as an HTTP service:
// the deployment picture of the paper's Figure 1 — many devices (or a
// fleet gateway) pushing updated model sets to a central manager, and
// analysts pulling selected models back out after incidents.
//
// The wire format keeps parameters binary end to end: a save request
// is a multipart body with a JSON "manifest" part (architecture, base
// set, update records, training info) and a raw "params" part
// (concatenated little-endian float32, exactly the Baseline file
// layout); recovery responses mirror it. Nothing is base64'd, so a
// 5000-model FFNN-48 set costs its 99.9 MB and not 133 MB.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
)

// Manifest is the JSON part of a save request: everything about a set
// except the parameter bytes.
type Manifest struct {
	Arch      *nn.Architecture   `json:"arch"`
	NumModels int                `json:"num_models"`
	Base      string             `json:"base,omitempty"`
	Updates   []core.ModelUpdate `json:"updates,omitempty"`
	Train     *core.TrainInfo    `json:"train,omitempty"`
	// SetID, when set, is an explicit ID for the saved set instead of a
	// server-allocated sequential one. The cluster router mints IDs this
	// way so the same logical save lands under the same ID on every
	// replica. The X-Mmm-Set-Id header overrides this field. Saving an
	// ID that already exists fails with 409/set_exists.
	SetID string `json:"set_id,omitempty"`
	// Codec, when set, asserts the compression codec the client
	// expects the save to be stored with. The server's approaches are
	// constructed once with the server-wide codec (Config.Codec), so a
	// mismatching assertion is rejected rather than silently ignored.
	Codec string `json:"codec,omitempty"`
}

// RecoveryManifest is the JSON part of a recovery response.
type RecoveryManifest struct {
	Arch      *nn.Architecture `json:"arch"`
	NumModels int              `json:"num_models"`
	// Indices is set on selective recoveries: the model index each
	// consecutive parameter block belongs to.
	Indices []int `json:"indices,omitempty"`
	// Report is set on degraded recoveries (?partial=1): which models
	// were skipped and why.
	Report *core.RecoveryReport `json:"report,omitempty"`
	// Codec is the compression codec ID the recovered set was saved
	// with ("" for none). The parameter bytes in the response are
	// always decoded — this is provenance, not an encoding marker.
	Codec string `json:"codec,omitempty"`
}

// Config bounds a server's per-request behavior. The zero value means
// no request timeout, the built-in body cap only, and a 1-second
// Retry-After hint during drain.
type Config struct {
	// RequestTimeout caps each request's handling time via its context;
	// zero disables the deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request body size via http.MaxBytesReader;
	// oversized bodies fail with 413. Zero applies no cap beyond the
	// handler-level limits.
	MaxBodyBytes int64
	// RetryAfter is the Retry-After hint sent with drain-mode 503s.
	RetryAfter time.Duration
	// Codec is the compression codec ID every approach is constructed
	// with (equivalent to appending core.WithCodec(Codec) to the
	// options); "" stores blobs raw. Stores written with other codecs
	// remain readable — the codec only affects new saves.
	Codec string
	// CacheBytes attaches an in-memory serving-tier chunk cache of at
	// most this many bytes to the store (core.WithChunkCache), so
	// repeated recoveries of warm sets skip store reads and decode
	// work. Zero or negative leaves the store uncached.
	CacheBytes int64
	// Dedup routes every save through the chunk-level CAS layer
	// (core.WithDedup), which also makes full snapshots servable over
	// the pull protocol and syncable between cluster nodes chunk-wise.
	Dedup bool
}

// Server is the HTTP transport over a Service: mux routing plus the
// Gate middleware (per-route metrics, drain, body cap, deadline). The
// storage behavior itself lives in the embedded Service.
type Server struct {
	*Service
	mux      *http.ServeMux
	metrics  *obs.Registry
	cfg      Config
	draining atomic.Bool
	gate     *Gate
}

// New builds a server over stores, exposing the four standard
// approaches under their lower-case names (baseline, update,
// provenance, mmlib). Options (e.g. core.WithConcurrency) are applied
// to every approach. Metrics go to obs.Default and are served on
// GET /metrics; use NewWithMetrics to isolate them.
func New(stores core.Stores, opts ...core.Option) *Server {
	return NewWithMetrics(stores, obs.Default, opts...)
}

// NewWithMetrics is New with an explicit metrics registry: approach
// and HTTP instrumentation record into reg, and GET /metrics renders
// reg. A core.WithMetrics in opts overrides the approach wiring but
// not what /metrics serves.
func NewWithMetrics(stores core.Stores, reg *obs.Registry, opts ...core.Option) *Server {
	return NewWithConfig(stores, reg, Config{}, opts...)
}

// NewWithConfig is NewWithMetrics with explicit request bounds.
func NewWithConfig(stores core.Stores, reg *obs.Registry, cfg Config, opts ...core.Option) *Server {
	if reg == nil {
		reg = obs.Default
	}
	cfg = normalizeConfig(cfg)
	s := &Server{
		Service: NewService(stores, reg, cfg, opts...),
		mux:     http.NewServeMux(),
		metrics: reg,
		cfg:     cfg,
	}
	s.gate = &Gate{
		Registry: reg,
		Config:   cfg,
		Draining: s.draining.Load,
		Route: func(r *http.Request) string {
			_, route := s.mux.Handler(r)
			return route
		},
		Next: s.mux,
	}
	s.gate.Describe()
	reg.Describe(metricHTTPReplays, "Saves answered from the idempotency journal instead of re-executing.")
	s.routes()
	return s
}

// BeginDrain puts the server into drain mode: /readyz starts failing
// and every request except health, readiness, and metrics is rejected
// with 503 and a Retry-After hint, while requests already in flight
// run to completion. Draining is one-way; a draining process is on its
// way out.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP implements http.Handler by delegating to the Gate
// middleware (per-route metrics, drain-mode 503s, the request body
// cap, and the per-request deadline) wrapping the route mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.gate.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /api/approaches", s.handleApproaches)
	s.mux.HandleFunc("GET /api/{approach}/sets", s.handleList)
	s.mux.HandleFunc("POST /api/{approach}/sets", s.handleSave)
	s.mux.HandleFunc("GET /api/{approach}/sets/{id}", s.handleInfo)
	s.mux.HandleFunc("GET /api/{approach}/sets/{id}/params", s.handleRecover)
	s.mux.HandleFunc("GET /api/cas/recipe/{approach}/{id}", s.handlePullRecipe)
	s.mux.HandleFunc("GET /api/cas/chunk/{hash}", s.handleChunk)
	s.mux.HandleFunc("POST /api/{approach}/verify", s.handleVerify)
	s.mux.HandleFunc("POST /api/{approach}/prune", s.handlePrune)
	s.mux.HandleFunc("POST /api/datasets", s.handlePutDataset)
	s.mux.HandleFunc("GET /api/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /api/fsck", s.handleFsck)
	s.mux.HandleFunc("GET /api/du", s.handleDu)
	s.mux.HandleFunc("GET /api/version", s.handleVersion)
	s.mux.HandleFunc("POST /api/cluster/sync", s.handleSync)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// handleMetrics renders the registry in Prometheus text exposition
// format (version 0.0.4), written by hand — the server takes no
// dependency on a metrics client library.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// httpError is the JSON error envelope. Code carries the sentinel the
// error wraps, so clients can reconstruct errors.Is semantics across
// the HTTP boundary instead of matching on status codes alone.
type httpError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Error codes carried in the envelope.
const (
	codeSetNotFound      = "set_not_found"
	codeChecksumMismatch = "checksum_mismatch"
	codeCorruptBlob      = "corrupt_blob"
	codeBudgetExceeded   = "budget_exceeded"
	codeBaseMismatch     = "base_mismatch"
	// codePullUnavailable marks a set that exists but cannot be served
	// over the chunk-level pull protocol; clients fall back to the
	// multipart recovery path.
	codePullUnavailable = "pull_unavailable"
	// codeNoSpace marks a save the server's disk could not hold. The
	// save rolled back cleanly; the client may retry after the operator
	// frees space.
	codeNoSpace = "no_space"
	// codeSetExists marks an explicit-ID save whose ID is already
	// taken. For a router replaying the same logical save onto a
	// replica this means "already replicated" — success, not failure.
	codeSetExists = "set_exists"
)

// errorCode maps an error onto its wire code ("" if it wraps no known
// sentinel). Checksum mismatches are tested before generic corruption:
// they are the more specific diagnosis.
func errorCode(err error) string {
	switch {
	case errors.Is(err, core.ErrSetNotFound):
		return codeSetNotFound
	case errors.Is(err, core.ErrChecksumMismatch):
		return codeChecksumMismatch
	case errors.Is(err, core.ErrCorruptBlob):
		return codeCorruptBlob
	case errors.Is(err, core.ErrBudgetExceeded):
		return codeBudgetExceeded
	case errors.Is(err, core.ErrBaseMismatch):
		return codeBaseMismatch
	case errors.Is(err, core.ErrPullUnavailable):
		return codePullUnavailable
	case errors.Is(err, core.ErrSetExists):
		return codeSetExists
	case core.IsNoSpace(err):
		return codeNoSpace
	default:
		return ""
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpError{Error: err.Error(), Code: errorCode(err)})
}

func (s *Server) approach(w http.ResponseWriter, r *http.Request) (core.Approach, bool) {
	name := r.PathValue("approach")
	a, ok := s.approaches[name]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown approach %q", name))
		return nil, false
	}
	return a, true
}

// handleHealth is liveness: the process is up and serving. It stays
// 200 during drain — a draining process is alive, just not accepting
// new work.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is readiness: whether the server wants new traffic. It
// flips to 503 the moment drain begins, so load balancers stop routing
// here while in-flight requests finish.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleApproaches(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, len(s.approaches))
	for n := range s.approaches {
		names = append(names, n)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	a, ok := s.approach(w, r)
	if !ok {
		return
	}
	l, ok := a.(interface{ SetIDs() ([]string, error) })
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("approach does not list sets"))
		return
	}
	ids, err := l.SetIDs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	a, ok := s.approach(w, r)
	if !ok {
		return
	}
	l, ok := a.(core.Lineager)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("approach does not expose lineage"))
		return
	}
	chain, err := l.Lineage(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, chain)
}

// maxSaveBytes bounds a save request body (manifest + parameters).
const maxSaveBytes = 1 << 31 // 2 GiB

// IdempotencyKeyHeader lets a save be retried safely: two saves with
// the same key to the same approach execute once, with the journaled
// result replayed to later attempts.
const IdempotencyKeyHeader = "Idempotency-Key"

// ReplayHeader marks a save response that was answered from the
// idempotency journal instead of executing the save again.
const ReplayHeader = "Idempotent-Replay"

// SetIDHeader carries an explicit set ID for a save, overriding the
// manifest's set_id field. The cluster router sets it so one logical
// save lands under the same ID on every replica; header-over-manifest
// lets the router re-route a client-authored body without rewriting
// the multipart payload.
const SetIDHeader = "X-Mmm-Set-Id"

// setCodec looks up the codec ID a stored set was saved with, best
// effort: "" when the approach has no lineage support or the set is
// unknown.
func (s *Server) setCodec(a core.Approach, id string) string {
	l, ok := a.(core.Lineager)
	if !ok {
		return ""
	}
	chain, err := l.Lineage(id)
	if err != nil || len(chain) == 0 {
		return ""
	}
	return chain[0].Codec
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	a, ok := s.approach(w, r)
	if !ok {
		return
	}
	if key := r.Header.Get(IdempotencyKeyHeader); key != "" {
		// The per-key lock serializes concurrent retries of the same
		// operation; the journal check catches completed ones — before
		// the body is read, so a replay costs no parsing.
		unlock := s.journal.lock(a.Name(), key)
		defer unlock()
		if res, ok, err := s.journal.completed(a.Name(), key); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("reading op journal: %w", err))
			return
		} else if ok {
			s.metrics.Counter(metricHTTPReplays).Inc()
			w.Header().Set(ReplayHeader, "true")
			writeJSON(w, http.StatusCreated, res)
			return
		}
	}
	mr, err := r.MultipartReader()
	if err != nil {
		writeError(w, bodyStatus(err), fmt.Errorf("expected multipart body: %w", err))
		return
	}

	var manifest *Manifest
	var params []byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, bodyStatus(err), err)
			return
		}
		switch part.FormName() {
		case "manifest":
			manifest = &Manifest{}
			if err := json.NewDecoder(io.LimitReader(part, 1<<24)).Decode(manifest); err != nil {
				writeError(w, bodyStatus(err), fmt.Errorf("parsing manifest: %w", err))
				return
			}
		case "params":
			params, err = io.ReadAll(io.LimitReader(part, maxSaveBytes+1))
			if err != nil {
				writeError(w, bodyStatus(err), fmt.Errorf("reading params: %w", err))
				return
			}
			if len(params) > maxSaveBytes {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("params part exceeds %d bytes: %w", maxSaveBytes, core.ErrBudgetExceeded))
				return
			}
		}
	}
	if manifest == nil || manifest.Arch == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing manifest part"))
		return
	}
	if manifest.Codec != "" && manifest.Codec != s.EffectiveCodec() {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("manifest asserts codec %q but this server stores with %q", manifest.Codec, s.EffectiveCodec()))
		return
	}
	set, err := setFromBytes(manifest.Arch, manifest.NumModels, params)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	setID := manifest.SetID
	if h := r.Header.Get(SetIDHeader); h != "" {
		setID = h
	}
	res, err := a.SaveContext(r.Context(), core.SaveRequest{
		Set: set, Base: manifest.Base, SetID: setID,
		Updates: manifest.Updates, Train: manifest.Train,
	})
	if err != nil {
		writeError(w, saveStatus(err), err)
		return
	}
	if key := r.Header.Get(IdempotencyKeyHeader); key != "" {
		// Best-effort: the set is durable either way; a failed journal
		// write only means a retry would re-save rather than replay.
		_ = s.journal.record(a.Name(), key, res)
	}
	writeJSON(w, http.StatusCreated, res)
}

// bodyStatus maps a request-body read error onto an HTTP status: a
// body that hit the server's MaxBytesReader cap is 413, anything else
// malformed is 400.
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) || strings.Contains(err.Error(), "request body too large") {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// saveStatus maps a save error onto an HTTP status. Disk-full is 507
// Insufficient Storage: the request was well-formed, the server simply
// cannot hold it — retryable once the operator frees space.
func saveStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrSetNotFound):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBudgetExceeded):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, core.ErrSetExists):
		return http.StatusConflict
	case core.IsNoSpace(err):
		return http.StatusInsufficientStorage
	default:
		return http.StatusUnprocessableEntity
	}
}

// recoverStatus maps a recover error onto an HTTP status: unknown sets
// are 404, detected bit rot (checksum mismatch) is a 500 — the data
// the server promised to keep is gone, which is a server fault, not a
// request fault — and everything else (foreign sets, malformed docs)
// is a 422.
func recoverStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrSetNotFound):
		return http.StatusNotFound
	case errors.Is(err, core.ErrChecksumMismatch):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	a, ok := s.approach(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	partial := false
	switch v := r.URL.Query().Get("partial"); v {
	case "", "0", "false":
	case "1", "true":
		partial = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid partial value %q", v))
		return
	}

	var manifest RecoveryManifest
	var params []byte
	rawIndices := r.URL.Query().Get("indices")
	if rawIndices != "" || partial {
		var indices []int
		var err error
		if rawIndices != "" {
			indices, err = parseIndices(rawIndices)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		} else {
			// Degraded full recovery: resolve the set size and ask for
			// every model, so per-model failures turn into skips.
			indices, err = s.allIndices(a, id)
			if err != nil {
				writeError(w, recoverStatus(err), err)
				return
			}
		}
		pr, ok := a.(core.PartialRecoverer)
		if !ok {
			writeError(w, http.StatusNotImplemented, fmt.Errorf("approach does not support selective recovery"))
			return
		}
		var opts []core.RecoverOption
		var report core.RecoveryReport
		if partial {
			opts = append(opts, core.WithPartialResults(&report))
		}
		rec, err := pr.RecoverModelsContext(r.Context(), id, indices, opts...)
		if err != nil {
			writeError(w, recoverStatus(err), err)
			return
		}
		sorted := make([]int, 0, len(rec.Models))
		for idx := range rec.Models {
			sorted = append(sorted, idx)
		}
		sort.Ints(sorted)
		manifest = RecoveryManifest{Arch: rec.Arch, NumModels: len(sorted), Indices: sorted, Codec: s.setCodec(a, id)}
		if partial {
			manifest.Report = &report
		}
		for _, idx := range sorted {
			params = rec.Models[idx].AppendParamBytes(params)
		}
	} else {
		set, err := a.RecoverContext(r.Context(), id)
		if err != nil {
			writeError(w, recoverStatus(err), err)
			return
		}
		manifest = RecoveryManifest{Arch: set.Arch, NumModels: set.Len(), Codec: s.setCodec(a, id)}
		params = setToBytes(set)
	}

	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", mw.FormDataContentType())
	w.WriteHeader(http.StatusOK)
	mpart, err := mw.CreateFormField("manifest")
	if err == nil {
		err = json.NewEncoder(mpart).Encode(manifest)
	}
	if err == nil {
		var ppart io.Writer
		ppart, err = mw.CreateFormFile("params", "params.bin")
		if err == nil {
			_, err = ppart.Write(params)
		}
	}
	if err == nil {
		err = mw.Close()
	}
	if err != nil {
		// Headers are gone, so no status can signal the failure — but a
		// bare return would end the chunked body cleanly and the client
		// would mistake the truncated multipart for a complete response.
		// Aborting tears the connection down mid-body, which surfaces
		// client-side as a retryable transport error.
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	a, ok := s.approach(w, r)
	if !ok {
		return
	}
	v, ok := a.(core.Verifier)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("approach does not support verification"))
		return
	}
	issues, err := v.VerifyStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if issues == nil {
		issues = []core.Issue{}
	}
	writeJSON(w, http.StatusOK, issues)
}

// pruneRequest is the JSON body of a prune call.
type pruneRequest struct {
	Keep []string `json:"keep"`
}

func (s *Server) handlePrune(w http.ResponseWriter, r *http.Request) {
	a, ok := s.approach(w, r)
	if !ok {
		return
	}
	p, ok := a.(core.Pruner)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("approach does not support pruning"))
		return
	}
	var req pruneRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	report, err := p.Prune(req.Keep)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// fsckRequest is the JSON body of a fsck call.
type fsckRequest struct {
	Repair bool `json:"repair"`
}

// handleFsck runs a store-wide integrity check across every approach's
// namespace — checksums, set completeness, orphan detection — and
// optionally deletes the orphans. Unlike /api/{approach}/verify, this
// is not scoped to one approach: crash debris has no owner.
func (s *Server) handleFsck(w http.ResponseWriter, r *http.Request) {
	var req fsckRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, bodyStatus(err), err)
			return
		}
	}
	report, err := core.Fsck(s.stores, core.FsckOptions{Repair: req.Repair})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// handleDu reports storage occupancy — logical versus physical bytes
// per set and store-wide — across every approach's namespace. Like
// /api/fsck it is store-scoped: deduplicated chunks are shared across
// approaches, so per-approach accounting would double-count them.
func (s *Server) handleDu(w http.ResponseWriter, _ *http.Request) {
	report, err := core.Du(s.stores)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

func (s *Server) handlePutDataset(w http.ResponseWriter, r *http.Request) {
	var spec dataset.Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	id, err := s.stores.Datasets.Put(spec)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.stores.Datasets.IDs())
}

// allIndices resolves setID's model count through the approach's
// lineage and returns [0, n) — what a degraded full recovery asks for.
func (s *Server) allIndices(a core.Approach, setID string) ([]int, error) {
	l, ok := a.(core.Lineager)
	if !ok {
		return nil, fmt.Errorf("approach does not expose set metadata")
	}
	chain, err := l.Lineage(setID)
	if err != nil {
		return nil, err
	}
	n := chain[0].NumModels
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	return indices, nil
}

// parseIndices parses "1,5,42" into ints.
func parseIndices(raw string) ([]int, error) {
	parts := strings.Split(raw, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid index %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// setToBytes serializes a set's parameters in the concatenated layout.
func setToBytes(set *core.ModelSet) []byte {
	buf := make([]byte, 0, set.Arch.ParamBytes()*set.Len())
	for _, m := range set.Models {
		buf = m.AppendParamBytes(buf)
	}
	return buf
}

// setFromBytes reconstructs a set from the concatenated layout.
func setFromBytes(arch *nn.Architecture, n int, data []byte) (*core.ModelSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("server: set needs a positive model count")
	}
	per := arch.ParamBytes()
	if len(data) != per*n {
		return nil, fmt.Errorf("server: params part has %d bytes, want %d (%d models × %d)",
			len(data), per*n, n, per)
	}
	set := &core.ModelSet{Arch: arch, Models: make([]*nn.Model, n)}
	for i := 0; i < n; i++ {
		m, err := nn.NewModelUninitialized(arch)
		if err != nil {
			return nil, err
		}
		if _, err := m.SetParamBytes(data[i*per : (i+1)*per]); err != nil {
			return nil, err
		}
		set.Models[i] = m
	}
	return set, nil
}
