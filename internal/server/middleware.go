package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/mmm-go/mmm/internal/obs"
)

// Gate is the transport-level middleware shared by every HTTP surface
// of the system — the data-plane node server and the cluster router
// alike. It applies, in order: drain-mode rejection (503 with a
// Retry-After hint), the request body cap, the per-request context
// deadline, and per-route request count/latency metrics. Factoring it
// out of Server is what lets routed and proxied endpoints carry the
// exact same operational guarantees as local ones instead of
// re-implementing (or silently missing) them.
type Gate struct {
	// Registry receives mmm_http_* series; nil means obs.Default.
	Registry *obs.Registry
	// Config supplies RequestTimeout, MaxBodyBytes, and RetryAfter.
	Config Config
	// Draining, when non-nil and true, rejects non-exempt requests.
	Draining func() bool
	// Route maps a request to its route pattern for metric labels (the
	// raw URL would explode label cardinality with set IDs). Nil labels
	// every request "unmatched".
	Route func(*http.Request) string
	// Next is the guarded handler.
	Next http.Handler
}

// HTTP-layer metric names, shared by node servers and routers.
const (
	metricHTTPRequests = "mmm_http_requests_total"
	metricHTTPSeconds  = "mmm_http_request_seconds"
	metricHTTPDrained  = "mmm_http_drain_rejects_total"
	metricHTTPReplays  = "mmm_http_idempotent_replays_total"
)

// Describe registers the gate's metric descriptions on reg.
func (g *Gate) Describe() {
	reg := g.reg()
	reg.Describe(metricHTTPRequests, "HTTP requests served, by route pattern and status code.")
	reg.Describe(metricHTTPSeconds, "HTTP request latency in seconds, by route pattern.")
	reg.Describe(metricHTTPDrained, "Requests rejected with 503 because the server was draining.")
}

func (g *Gate) reg() *obs.Registry {
	if g.Registry != nil {
		return g.Registry
	}
	return obs.Default
}

// statusWriter captures the response status for request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// drainExempt lists the endpoints that keep answering during drain:
// orchestrators must still be able to probe liveness and readiness,
// and scrapers must be able to collect the final metrics.
func drainExempt(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metrics"
}

// errServerDraining is the drain-mode rejection; clients match it via
// the 503 status plus Retry-After rather than the envelope code.
var errServerDraining = errors.New("server is draining; retry against another replica")

// retryAfterSeconds renders d as a Retry-After value, rounding up so a
// sub-second hint never becomes "retry immediately".
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// ServeHTTP implements http.Handler.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := "unmatched"
	if g.Route != nil {
		if rt := g.Route(r); rt != "" {
			route = rt
		}
	}
	reg := g.reg()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	g.serve(sw, r)
	reg.Histogram(metricHTTPSeconds, obs.TimeBuckets,
		obs.L("route", route)).Observe(time.Since(start).Seconds())
	reg.Counter(metricHTTPRequests,
		obs.L("route", route), obs.L("code", strconv.Itoa(sw.status))).Inc()
}

func (g *Gate) serve(w http.ResponseWriter, r *http.Request) {
	if g.Draining != nil && g.Draining() && !drainExempt(r.URL.Path) {
		g.reg().Counter(metricHTTPDrained).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(g.Config.RetryAfter)))
		WriteError(w, http.StatusServiceUnavailable, errServerDraining)
		return
	}
	if g.Config.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, g.Config.MaxBodyBytes)
	}
	if g.Config.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), g.Config.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	g.Next.ServeHTTP(w, r)
}

// WriteJSON writes v as a JSON response with the given status. It is
// exported for the cluster router, which speaks the same wire dialect.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, v)
}

// WriteError writes the standard JSON error envelope, deriving the
// machine-readable code from the core sentinel err wraps (if any).
func WriteError(w http.ResponseWriter, status int, err error) {
	writeError(w, status, err)
}
