package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/version"
)

// newNode starts an in-process node with its own stores and registry.
func newNode(t *testing.T, cfg Config) (*Client, *Server, core.Stores) {
	t.Helper()
	stores := core.NewMemStores()
	api := NewWithConfig(stores, obs.New(), cfg)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, api, stores
}

func TestVersionEndpoint(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newNode(t, Config{Codec: "zlib", Dedup: true})
	v, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != version.Version {
		t.Fatalf("version = %q, want %q", v.Version, version.Version)
	}
	if v.Codec != "zlib" || !v.Dedup {
		t.Fatalf("policy = codec %q dedup %v, want zlib/true", v.Codec, v.Dedup)
	}
	if len(v.Approaches) != 4 {
		t.Fatalf("approaches = %v", v.Approaches)
	}

	raw, _, _ := newNode(t, Config{})
	rv, err := raw.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Codec != "none" || rv.Dedup {
		t.Fatalf("default policy = codec %q dedup %v, want none/false", rv.Codec, rv.Dedup)
	}
	if rv.Compatible(v) {
		t.Fatal("raw node should be incompatible with zlib+dedup node")
	}
}

func TestExplicitIDSave(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newNode(t, Config{})
	set := testSet(t, 4)

	res, err := c.SaveAs(ctx, "baseline", "my-set-01", "", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetID != "my-set-01" {
		t.Fatalf("set ID = %q, want my-set-01", res.SetID)
	}
	got, err := c.Recover(ctx, "baseline", "my-set-01")
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("recovered set differs")
	}

	// The same explicit ID again must conflict with set_exists.
	if _, err := c.SaveAs(ctx, "baseline", "my-set-01", "", testSet(t, 4), "", nil, nil); !errors.Is(err, core.ErrSetExists) {
		t.Fatalf("duplicate explicit ID: err = %v, want ErrSetExists", err)
	}

	// Illegal IDs are rejected before anything is written.
	if _, err := c.SaveAs(ctx, "baseline", "../evil", "", testSet(t, 4), "", nil, nil); err == nil {
		t.Fatal("path-traversal ID accepted")
	}

	// An allocator-assigned ID still works alongside explicit ones.
	auto, err := c.Save(ctx, "baseline", testSet(t, 4), "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.SetID == "" || auto.SetID == "my-set-01" {
		t.Fatalf("allocator ID = %q", auto.SetID)
	}
}

func TestSyncSetCopiesByteIdentically(t *testing.T) {
	ctx := context.Background()
	srcClient, _, _ := newNode(t, Config{Dedup: true})
	dstClient, dstAPI, _ := newNode(t, Config{Dedup: true})

	set := testSet(t, 10)
	res, err := srcClient.SaveAs(ctx, "baseline", "sync-src-01", "", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := dstClient.Sync(ctx, "baseline", res.SetID, srcClient.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlreadyPresent {
		t.Fatal("first sync reported AlreadyPresent")
	}
	if rep.ChunksFetched == 0 || rep.BytesFetched == 0 {
		t.Fatalf("sync moved nothing: %+v", rep)
	}
	got, err := dstClient.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("synced set differs from original")
	}

	// Re-syncing is an idempotent no-op.
	rep2, err := dstClient.Sync(ctx, "baseline", res.SetID, srcClient.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.AlreadyPresent || rep2.BytesFetched != 0 {
		t.Fatalf("re-sync = %+v, want AlreadyPresent with zero transfer", rep2)
	}

	// Both stores pass fsck after the copy: the sync wrote a complete,
	// committed set, not debris.
	report, err := dstClient.Fsck(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("destination fsck: %+v", report.Issues)
	}
	_ = dstAPI
}

// TestSyncMovesOnlyMissingChunks is the rebalance wire-efficiency
// claim at the unit level: syncing a lightly mutated sibling of a set
// the destination already holds fetches only the changed chunks.
func TestSyncMovesOnlyMissingChunks(t *testing.T) {
	ctx := context.Background()
	srcClient, _, _ := newNode(t, Config{Dedup: true})
	dstClient, _, _ := newNode(t, Config{Dedup: true})

	base, err := core.NewModelSet(nn.FFNN("sync-delta", 64, []int{64}, 8), 16, 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srcClient.SaveAs(ctx, "baseline", "delta-a", "", base, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Same seed, one model nudged: almost every chunk is shared.
	sibling, err := core.NewModelSet(nn.FFNN("sync-delta", 64, []int{64}, 8), 16, 77)
	if err != nil {
		t.Fatal(err)
	}
	sibling.Models[3].Params()[0].Tensor.Data[0] += 1
	if _, err := srcClient.SaveAs(ctx, "baseline", "delta-b", "", sibling, "", nil, nil); err != nil {
		t.Fatal(err)
	}

	repA, err := dstClient.Sync(ctx, "baseline", "delta-a", srcClient.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := dstClient.Sync(ctx, "baseline", "delta-b", srcClient.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	if repB.ChunkCacheHits == 0 {
		t.Fatalf("sibling sync hit no cached chunks: %+v", repB)
	}
	if repB.BytesFetched >= repA.BytesFetched {
		t.Fatalf("sibling sync fetched %d bytes, full sync fetched %d — expected a delta",
			repB.BytesFetched, repA.BytesFetched)
	}
}

func TestSyncUnknownSetFails(t *testing.T) {
	ctx := context.Background()
	srcClient, _, _ := newNode(t, Config{Dedup: true})
	dstClient, _, _ := newNode(t, Config{Dedup: true})
	_, err := dstClient.Sync(ctx, "baseline", "no-such-set", srcClient.BaseURL)
	if !errors.Is(err, core.ErrSetNotFound) {
		t.Fatalf("err = %v, want ErrSetNotFound", err)
	}
}
