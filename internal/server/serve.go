package server

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Graceful lifecycle: a management server holds multi-gigabyte saves
// in flight, so stopping one is a protocol, not a kill. When the run
// context is canceled the server (1) flips /readyz and starts 503ing
// new work so load balancers drain it, (2) lets in-flight requests
// finish within the drain deadline, and (3) past the deadline cancels
// their contexts — a canceled save rolls back its partial writes — and
// closes what remains. fsck after any of these exits finds no orphans.

// DefaultDrainTimeout bounds the graceful-shutdown wait when the
// caller does not choose one.
const DefaultDrainTimeout = 15 * time.Second

// lateGrace is how long canceled in-flight requests get to unwind
// (roll back, write their error response) after the drain deadline,
// before connections are closed outright.
const lateGrace = 2 * time.Second

// ListenAndServe runs hs until ctx is canceled, then drains
// gracefully. api is the drainable server behind hs.Handler — a node
// Server or a cluster Router, possibly wrapped in extra middleware; it
// is told to BeginDrain before shutdown so readiness flips first. See
// ServeListener for the shutdown protocol.
func ListenAndServe(ctx context.Context, hs *http.Server, api Drainer, drainTimeout time.Duration) error {
	addr := hs.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, hs, api, ln, drainTimeout)
}

// ServeListener is ListenAndServe over an existing listener (which may
// be wrapped, e.g. by netchaos for fault drills). It returns nil after
// a clean drain, the context's deadline error when in-flight requests
// had to be canceled, and the serve error if the listener failed
// before shutdown was requested.
func ServeListener(ctx context.Context, hs *http.Server, api Drainer, ln net.Listener, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	// In-flight requests inherit baseCtx: canceling it is the lever
	// that turns a hung save into a rolled-back one.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	if hs.BaseContext == nil {
		hs.BaseContext = func(net.Listener) context.Context { return baseCtx }
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	if api != nil {
		api.BeginDrain()
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	err := hs.Shutdown(drainCtx)
	if err == nil {
		<-errc // hs.Serve has returned ErrServerClosed
		return nil
	}

	// The drain deadline passed with requests still running. Cancel
	// them so saves roll back, give them a short grace to unwind, then
	// close whatever is left.
	cancelBase()
	graceCtx, cancelGrace := context.WithTimeout(context.Background(), lateGrace)
	defer cancelGrace()
	if gerr := hs.Shutdown(graceCtx); gerr != nil {
		_ = hs.Close()
	}
	<-errc
	return err
}
