// Registry-grade pull protocol: instead of streaming one monolithic
// multipart blob per recovery, a pull-mode client fetches the set's
// chunk recipe (GET /api/cas/recipe/{approach}/{id}), diffs the chunk
// digests against its local content-addressed cache, and fetches only
// the missing chunks (GET /api/cas/chunk/{hash}) — in parallel, with
// per-chunk digest verification and HTTP Range resume after connection
// resets. Network cost becomes O(changed chunks), mirroring what the
// CAS layer already does for disk.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// PullChunk is one chunk reference in a pull manifest, in blob order.
// Hash addresses the logical (uncompressed) chunk bytes; Size is their
// logical length. The compact keys match cas.RecipeChunk: manifests for
// multi-thousand-model sets stay small.
type PullChunk struct {
	Hash string `json:"h"`
	Size int64  `json:"s"`
}

// PullManifest is the response of GET /api/cas/recipe/{approach}/{id}:
// everything a client needs to rebuild a set's parameter blob from
// individually addressable chunks.
type PullManifest struct {
	Arch      *nn.Architecture `json:"arch"`
	NumModels int              `json:"num_models"`
	// Codec is the codec ID the set was saved with — provenance only;
	// chunk bodies on the wire are always decoded logical bytes.
	Codec string `json:"codec,omitempty"`
	// Size is the logical parameter-blob size: the sum of chunk sizes
	// and exactly NumModels × Arch.ParamBytes().
	Size   int64       `json:"size"`
	Chunks []PullChunk `json:"chunks"`
}

// maxPullManifestBytes bounds a pull manifest document on the wire.
// A manifest row costs ~80 bytes; 16 MiB covers sets far beyond the
// 2 GiB params cap while keeping a corrupt length from allocating
// unboundedly.
const maxPullManifestBytes = 1 << 24

// DecodePullManifest parses and strictly validates a wire pull
// manifest. Every field a client will use for allocation or addressing
// is cross-checked — sizes against the architecture, chunk digests for
// shape, the chunk-size sum against the declared total — so a corrupt
// or malicious manifest fails here instead of driving bad fetches.
func DecodePullManifest(data []byte) (*PullManifest, error) {
	if len(data) > maxPullManifestBytes {
		return nil, fmt.Errorf("server: pull manifest exceeds %d bytes", maxPullManifestBytes)
	}
	var m PullManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: parsing pull manifest: %w", err)
	}
	if m.Arch == nil {
		return nil, fmt.Errorf("server: pull manifest missing architecture")
	}
	if err := m.Arch.Validate(); err != nil {
		return nil, fmt.Errorf("server: pull manifest architecture: %w", err)
	}
	if m.NumModels <= 0 {
		return nil, fmt.Errorf("server: pull manifest has no models")
	}
	per := int64(m.Arch.ParamBytes())
	want := per * int64(m.NumModels)
	if m.Size != want {
		return nil, fmt.Errorf("server: pull manifest size %d, want %d (%d models × %d bytes)",
			m.Size, want, m.NumModels, per)
	}
	if len(m.Chunks) == 0 {
		return nil, fmt.Errorf("server: pull manifest has no chunks")
	}
	var total int64
	for i, c := range m.Chunks {
		if !validChunkHash(c.Hash) {
			return nil, fmt.Errorf("server: pull manifest chunk %d has malformed digest %q", i, c.Hash)
		}
		if c.Size <= 0 || c.Size > m.Size-total {
			return nil, fmt.Errorf("server: pull manifest chunk %d size %d overruns blob size %d", i, c.Size, m.Size)
		}
		total += c.Size
	}
	if total != m.Size {
		return nil, fmt.Errorf("server: pull manifest chunks sum to %d bytes, want %d", total, m.Size)
	}
	return &m, nil
}

// validChunkHash reports whether h has the shape of a content address:
// exactly 64 lowercase hex digits.
func validChunkHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// pullStatus maps a recipe-resolution error onto an HTTP status. Sets
// that exist but cannot be served chunk-wise are 404 with the
// pull_unavailable code — a routing answer ("not here, use the
// multipart path"), not a data-loss answer.
func pullStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrPullUnavailable):
		return http.StatusNotFound
	default:
		return recoverStatus(err)
	}
}

// handlePullRecipe serves the chunk-level transfer manifest of a set:
// the architecture plus the ordered chunk digest list of its
// concatenated parameter blob. Only full snapshots saved through the
// dedup layer have one; everything else answers 404/pull_unavailable so
// clients fall back to the multipart path.
func (s *Server) handlePullRecipe(w http.ResponseWriter, r *http.Request) {
	a, ok := s.approach(w, r)
	if !ok {
		return
	}
	ps, ok := a.(core.PullSourcer)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("approach does not serve chunk transfer: %w", core.ErrPullUnavailable))
		return
	}
	src, err := ps.PullSource(r.PathValue("id"))
	if err != nil {
		writeError(w, pullStatus(err), err)
		return
	}
	cs := cas.For(s.stores.Blobs)
	if !cs.Has(src.ParamsKey) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("set %q is not chunk-addressed (saved without dedup): %w",
				r.PathValue("id"), core.ErrPullUnavailable))
		return
	}
	recipe, err := cs.Recipe(src.ParamsKey)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	m := PullManifest{
		Arch:      src.Arch,
		NumModels: src.NumModels,
		Codec:     src.Codec,
		Size:      recipe.Size,
		Chunks:    make([]PullChunk, len(recipe.Chunks)),
	}
	for i, c := range recipe.Chunks {
		m.Chunks[i] = PullChunk{Hash: c.Hash, Size: c.Size}
	}
	writeJSON(w, http.StatusOK, m)
}

// handleChunk serves one chunk's logical bytes by content address.
// Bodies go through http.ServeContent, so single ranges, multiple
// ranges, suffix ranges, If-Range, and 416 for ranges past EOF all
// follow RFC 9110 without hand-rolled code — range support is what
// makes mid-chunk resume possible for clients. The ETag is the content
// address itself: a chunk's bytes can never change under its hash, so
// resumed requests always validate.
//
// The chunk body's logical size must be passed as ?s= — stored bodies
// may be codec-framed, and decoding one needs the logical length the
// recipe promises. Clients read it from the pull manifest.
func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !validChunkHash(hash) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed chunk digest %q", hash))
		return
	}
	size, err := strconv.ParseInt(r.URL.Query().Get("s"), 10, 64)
	if err != nil || size <= 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("chunk request needs a positive logical size (?s=): %q", r.URL.Query().Get("s")))
		return
	}
	data, err := cas.For(s.stores.Blobs).GetChunk(hash, size)
	switch {
	case err == nil:
	case backend.IsNotFound(err):
		writeError(w, http.StatusNotFound, fmt.Errorf("no chunk stored under digest %s", hash))
		return
	case errors.Is(err, cas.ErrCorrupt):
		writeError(w, http.StatusInternalServerError, fmt.Errorf("%v: %w", err, core.ErrCorruptBlob))
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("ETag", `"`+hash+`"`)
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, "", time.Time{}, bytes.NewReader(data))
}
