package server

import (
	"encoding/json"
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

// FuzzPullManifestDecode hammers the wire recipe decoder with mutated
// inputs. The decoder fronts untrusted bytes (any HTTP server the
// client is pointed at), so the invariants are strict: whatever comes
// back either errors or is internally consistent — validated arch,
// positive sizes, chunk sizes summing exactly to the declared total,
// well-formed lowercase-hex digests.
func FuzzPullManifestDecode(f *testing.F) {
	arch := nn.FFNN("fuzz-pull", 4, []int{6}, 2)
	per := int64(arch.ParamBytes())
	valid, err := json.Marshal(PullManifest{
		Arch:      arch,
		NumModels: 2,
		Size:      2 * per,
		Chunks: []PullChunk{
			{Hash: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef", Size: per},
			{Hash: "fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210", Size: per},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"arch":null,"num_models":1}`))
	f.Add([]byte(`{"chunks":[{"h":"zz","s":-1}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodePullManifest(data)
		if err != nil {
			return
		}
		if m.Arch == nil || m.Arch.Validate() != nil {
			t.Fatalf("decoder accepted manifest with invalid arch: %+v", m)
		}
		if m.NumModels <= 0 || m.Size <= 0 {
			t.Fatalf("decoder accepted non-positive counts: %+v", m)
		}
		if int64(m.Arch.ParamBytes())*int64(m.NumModels) != m.Size {
			t.Fatalf("decoder accepted size %d inconsistent with %d models of %d bytes",
				m.Size, m.NumModels, m.Arch.ParamBytes())
		}
		var total int64
		for _, ch := range m.Chunks {
			if !validChunkHash(ch.Hash) {
				t.Fatalf("decoder accepted malformed digest %q", ch.Hash)
			}
			if ch.Size <= 0 {
				t.Fatalf("decoder accepted chunk size %d", ch.Size)
			}
			total += ch.Size
		}
		if total != m.Size {
			t.Fatalf("decoder accepted chunks totalling %d for size %d", total, m.Size)
		}
	})
}
