package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/netchaos"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// fastRetry keeps chaos tests quick: real backoff shapes are covered
// by TestRetryPolicyDelay.
func fastRetry() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 7}
}

// newConfigRig starts a server built with NewWithConfig and returns a
// client, the Server (for BeginDrain), and its stores.
func newConfigRig(t *testing.T, reg *obs.Registry, cfg Config) (*Client, *Server, core.Stores) {
	t.Helper()
	stores := core.NewMemStores()
	api := NewWithConfig(stores, reg, cfg)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, api, stores
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	ctx := context.Background()
	reg := obs.New()
	c, api, _ := newConfigRig(t, reg, Config{})

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("fresh server not ready: %v", err)
	}
	if err := c.WaitReady(ctx, time.Second); err != nil {
		t.Fatalf("WaitReady on fresh server: %v", err)
	}

	api.BeginDrain()
	if !api.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if err := c.Ready(ctx); err == nil {
		t.Fatal("Ready succeeded on draining server")
	}
	if err := c.WaitReady(ctx, 300*time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded on draining server")
	}

	// API requests are rejected with 503 + Retry-After…
	resp, err := http.Get(c.BaseURL + "/api/approaches")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("API during drain: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain is missing Retry-After")
	}

	// …while liveness and metrics stay up for the orchestrator.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s during drain: status = %d, want 200", path, resp.StatusCode)
		}
	}
	if got := reg.Counter(metricHTTPDrained).Value(); got < 1 {
		t.Fatalf("%s = %d, want >= 1", metricHTTPDrained, got)
	}
	// The drain rejections themselves must show up in /metrics.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, metricHTTPDrained) {
		t.Fatalf("/metrics during drain does not expose %s:\n%s", metricHTTPDrained, text)
	}
}

func TestRequestLimitsAndErrorEnvelopes(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newConfigRig(t, nil, Config{MaxBodyBytes: 1024})

	// Oversized multipart save → 413.
	set := testSet(t, 200) // ~40 KB of params, far over the 1 KB cap
	if _, err := c.Save(ctx, "baseline", set, "", nil, nil); err == nil {
		t.Fatal("oversized save accepted")
	} else if !strings.Contains(err.Error(), "HTTP 413") {
		t.Fatalf("oversized save: err = %v, want HTTP 413", err)
	}

	// Oversized JSON body → 413 with a JSON error envelope.
	big := `{"keep": ["` + strings.Repeat("x", 2048) + `"]}`
	resp, err := http.Post(c.BaseURL+"/api/baseline/prune", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, resp, http.StatusRequestEntityTooLarge)

	// Malformed JSON (under the cap) → 400 with a JSON error envelope.
	resp, err = http.Post(c.BaseURL+"/api/baseline/prune", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, resp, http.StatusBadRequest)

	resp, err = http.Post(c.BaseURL+"/api/fsck", "application/json", strings.NewReader("]["))
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, resp, http.StatusBadRequest)
}

// checkEnvelope asserts an error response carries the expected status
// and a JSON body with a non-empty "error" field.
func checkEnvelope(t *testing.T, resp *http.Response, wantStatus int) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("error response Content-Type = %q, want JSON", ct)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error response is not a JSON envelope: %v", err)
	}
	if env.Error == "" {
		t.Fatal("error envelope has empty error field")
	}
}

func TestChaosSaveExactlyOnceAcrossResets(t *testing.T) {
	ctx := context.Background()
	serverReg := obs.New()
	clientReg := obs.New()
	c, _, _ := newConfigRig(t, serverReg, Config{})

	// Attempt 1: the server processes the save fully but the response
	// is lost — the canonical duplicate-write trap. Attempt 2: reset
	// before the request. Attempt 3: clean, answered from the journal.
	tr := netchaos.NewTransport(nil, netchaos.Config{
		Script: []netchaos.Fault{netchaos.FaultDropResponse, netchaos.FaultReset},
	})
	c.HTTP = &http.Client{Transport: tr}
	c.Retry = fastRetry()
	c.Reg = clientReg

	set := testSet(t, 6)
	res, err := c.SaveWithKey(ctx, "baseline", "exactly-once-test", set, "", nil, nil)
	if err != nil {
		t.Fatalf("save across resets: %v", err)
	}
	if tr.Injected() != 2 {
		t.Fatalf("injected faults = %d, want 2", tr.Injected())
	}

	// The set must exist exactly once, and round-trip intact.
	c.HTTP = nil // clean connection for verification
	ids, err := c.List(ctx, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != res.SetID {
		t.Fatalf("after retried save: sets = %v, want exactly [%s]", ids, res.SetID)
	}
	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("retried save lost data")
	}

	// Attempt 3 must have been a journal replay, not a re-execution.
	if n := serverReg.Counter(metricHTTPReplays).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", metricHTTPReplays, n)
	}
	if n := clientReg.Counter(MetricClientRetries).Value(); n != 2 {
		t.Fatalf("%s = %d, want 2", MetricClientRetries, n)
	}
}

func TestIdempotentReplayDirect(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestRig(t)
	set := testSet(t, 4)

	first, err := c.SaveWithKey(ctx, "baseline", "replay-key", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.SaveWithKey(ctx, "baseline", "replay-key", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.SetID != first.SetID {
		t.Fatalf("replayed save returned %s, want %s", second.SetID, first.SetID)
	}
	ids, err := c.List(ctx, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("duplicate-key saves produced %d sets, want 1", len(ids))
	}
	// A different key is a different operation.
	third, err := c.SaveWithKey(ctx, "baseline", "other-key", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if third.SetID == first.SetID {
		t.Fatal("distinct keys deduplicated")
	}
	if _, err := c.SaveWithKey(ctx, "baseline", "", set, "", nil, nil); err == nil {
		t.Fatal("empty idempotency key accepted")
	}
}

func TestChaosGetRetriesTruncationAndBusy(t *testing.T) {
	ctx := context.Background()
	clientReg := obs.New()
	c, _ := newTestRig(t)
	set := testSet(t, 8)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A truncated response body and a synthesized 503 burst must both
	// be absorbed by the retry loop on safe (GET) requests.
	tr := netchaos.NewTransport(nil, netchaos.Config{
		Script: []netchaos.Fault{netchaos.FaultTruncate, netchaos.FaultServerBusy},
	})
	c.HTTP = &http.Client{Transport: tr}
	c.Retry = fastRetry()
	c.Reg = clientReg

	got, err := c.Recover(ctx, "baseline", res.SetID)
	if err != nil {
		t.Fatalf("recover through chaos: %v", err)
	}
	if !set.Equal(got) {
		t.Fatal("recover through chaos lost data")
	}
	if tr.Injected() < 1 {
		t.Fatal("no faults injected")
	}
	if n := clientReg.Counter(MetricClientRetries).Value(); n < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricClientRetries, n)
	}
}

func TestBreakerOpensProbesAndCloses(t *testing.T) {
	ctx := context.Background()
	reg := obs.New()

	var mu sync.Mutex
	failing := true
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		down := failing
		mu.Unlock()
		if down {
			http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `["baseline"]`)
	}))
	t.Cleanup(ts.Close)

	c := &Client{
		BaseURL: ts.URL,
		Retry:   &RetryPolicy{MaxAttempts: 1},
		Breaker: &Breaker{Threshold: 3, Cooldown: 50 * time.Millisecond},
		Reg:     reg,
	}

	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Approaches(ctx); err == nil {
			t.Fatal("request to failing server succeeded")
		}
	}
	if got := c.Breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker state = %d, want open (%d)", got, BreakerOpen)
	}
	if got := reg.Gauge(MetricClientBreakerState).Value(); got != BreakerOpen {
		t.Fatalf("breaker gauge = %d, want %d", got, BreakerOpen)
	}

	// While open, requests fail fast without touching the wire.
	if _, err := c.Approaches(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker: err = %v, want ErrCircuitOpen", err)
	}

	// After the cooldown the breaker goes half-open; a failed probe
	// re-opens it.
	time.Sleep(60 * time.Millisecond)
	if got := c.Breaker.State(); got != BreakerHalfOpen {
		t.Fatalf("breaker state after cooldown = %d, want half-open (%d)", got, BreakerHalfOpen)
	}
	if _, err := c.Approaches(ctx); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open probe: err = %v, want a sent-and-failed request", err)
	}
	if got := c.Breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker state after failed probe = %d, want open (%d)", got, BreakerOpen)
	}

	// Server recovers; the next probe closes the breaker.
	mu.Lock()
	failing = false
	mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	names, err := c.Approaches(ctx)
	if err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if len(names) != 1 || names[0] != "baseline" {
		t.Fatalf("probe response = %v", names)
	}
	if got := c.Breaker.State(); got != BreakerClosed {
		t.Fatalf("breaker state after successful probe = %d, want closed (%d)", got, BreakerClosed)
	}
	if got := reg.Gauge(MetricClientBreakerState).Value(); got != BreakerClosed {
		t.Fatalf("breaker gauge = %d, want %d", got, BreakerClosed)
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 42}
	for n := 1; n <= 6; n++ {
		d := p.delay(n, 0)
		want := 100 * time.Millisecond << (n - 1)
		if want > time.Second || want <= 0 {
			want = time.Second
		}
		if d < want/2 || d >= want {
			t.Fatalf("delay(%d) = %v, want in [%v, %v)", n, d, want/2, want)
		}
	}
	// A Retry-After hint raises the floor but respects the cap.
	if d := p.delay(1, 500*time.Millisecond); d < 250*time.Millisecond {
		t.Fatalf("delay with Retry-After 500ms = %v, want >= 250ms", d)
	}
	if d := p.delay(1, time.Hour); d >= time.Second {
		t.Fatalf("delay with huge Retry-After = %v, want < MaxDelay", d)
	}
	// nil policy must still produce sane defaults.
	var nilP *RetryPolicy
	if got := nilP.attempts(); got != 4 {
		t.Fatalf("nil policy attempts = %d, want 4", got)
	}
	if d := nilP.delay(1, 0); d <= 0 || d > 2*time.Second {
		t.Fatalf("nil policy delay = %v", d)
	}
}

// slowBackend delays every Put so a test can hold a save in flight
// while the server is told to shut down. The first Put closes started.
type slowBackend struct {
	backend.Backend
	putDelay time.Duration
	started  chan struct{}
	once     sync.Once
}

func (s *slowBackend) Put(key string, data []byte) error {
	s.once.Do(func() { close(s.started) })
	time.Sleep(s.putDelay)
	return s.Backend.Put(key, data)
}

// newDrainRig starts a real (non-httptest) server via ServeListener so
// shutdown semantics — BeginDrain, drain deadline, base-context
// cancellation — are the ones mmserve ships with.
func newDrainRig(t *testing.T, putDelay, drainTimeout time.Duration) (*Client, core.Stores, *slowBackend, context.CancelFunc, chan error) {
	t.Helper()
	slow := &slowBackend{Backend: backend.NewMem(), putDelay: putDelay, started: make(chan struct{})}
	stores := core.Stores{
		Docs:     docstore.New(backend.NewMem(), latency.CostModel{}, nil),
		Blobs:    blobstore.New(slow, latency.CostModel{}, nil),
		Datasets: dataset.NewRegistry(),
	}
	api := NewWithConfig(stores, nil, Config{})
	hs := &http.Server{Handler: api}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	exited := make(chan struct{})
	go func() {
		done <- ServeListener(runCtx, hs, api, ln, drainTimeout)
		close(exited)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-exited:
		case <-time.After(10 * time.Second):
			t.Error("server did not shut down")
		}
	})
	c := &Client{BaseURL: "http://" + ln.Addr().String()}
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return c, stores, slow, cancel, done
}

func TestChaosShutdownDrainsInFlightSave(t *testing.T) {
	ctx := context.Background()
	c, stores, slow, cancel, done := newDrainRig(t, 50*time.Millisecond, 10*time.Second)

	set := testSet(t, 6)
	type saveOut struct {
		res core.SaveResult
		err error
	}
	saved := make(chan saveOut, 1)
	go func() {
		res, err := c.Save(ctx, "baseline", set, "", nil, nil)
		saved <- saveOut{res, err}
	}()

	// Once the save's first blob write is in flight, order shutdown.
	<-slow.started
	cancel()

	out := <-saved
	if out.err != nil {
		t.Fatalf("in-flight save during graceful drain: %v", out.err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ServeListener after clean drain: %v", err)
	}

	// The drained store holds the completed set and no debris.
	report, err := core.Fsck(stores, core.FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("fsck after drain: %v", report.Issues)
	}
	if report.Sets != 1 {
		t.Fatalf("fsck found %d sets, want 1", report.Sets)
	}
}

func TestChaosShutdownDeadlineRollsBackStuckSave(t *testing.T) {
	ctx := context.Background()
	// Each blob write stalls 400ms against a 100ms drain budget: the
	// save cannot finish in time and must be canceled and rolled back.
	c, stores, slow, cancel, done := newDrainRig(t, 400*time.Millisecond, 100*time.Millisecond)

	set := testSet(t, 6)
	saveErr := make(chan error, 1)
	go func() {
		_, err := c.Save(ctx, "baseline", set, "", nil, nil)
		saveErr <- err
	}()

	<-slow.started
	cancel()

	if err := <-saveErr; err == nil {
		t.Fatal("stuck save reported success past the drain deadline")
	}
	if err := <-done; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ServeListener = %v, want context.DeadlineExceeded", err)
	}

	// The canceled save must have rolled back: no sets, no orphans.
	report, err := core.Fsck(stores, core.FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("fsck after canceled save: %v", report.Issues)
	}
	if report.Sets != 0 {
		t.Fatalf("fsck found %d sets after rollback, want 0", report.Sets)
	}
}

func TestChaosDegradedRecoveryOverHTTP(t *testing.T) {
	ctx := context.Background()
	c, _, blobBE := newRawRig(t)
	set := testSet(t, 5)
	res, err := c.Save(ctx, "mmlib", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one byte of model 2's parameter blob under the store.
	key := "mmlib/" + res.SetID + "/2/params.bin"
	raw, err := blobBE.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := blobBE.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	// Default mode fails closed across the wire.
	if _, err := c.Recover(ctx, "mmlib", res.SetID); !errors.Is(err, core.ErrChecksumMismatch) {
		t.Fatalf("strict recover: err = %v, want core.ErrChecksumMismatch", err)
	}

	// Degraded mode returns the surviving n-1 models plus a report
	// naming the casualty.
	rec, report, err := c.RecoverPartial(ctx, "mmlib", res.SetID)
	if err != nil {
		t.Fatalf("degraded recover: %v", err)
	}
	if len(rec.Models) != 4 {
		t.Fatalf("degraded recover returned %d models, want 4", len(rec.Models))
	}
	if _, ok := rec.Models[2]; ok {
		t.Fatal("corrupt model 2 present in degraded result")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if !rec.Models[i].ParamsEqual(set.Models[i]) {
			t.Fatalf("degraded recovery corrupted model %d", i)
		}
	}
	if report == nil || !report.Degraded() {
		t.Fatalf("report = %+v, want degraded", report)
	}
	if report.Requested != 5 || report.Recovered != 4 || report.Skipped != 1 {
		t.Fatalf("report counts = %d/%d/%d, want 5/4/1", report.Requested, report.Recovered, report.Skipped)
	}
	if len(report.Failures) != 1 || report.Failures[0].ModelIndex != 2 {
		t.Fatalf("report failures = %+v, want model 2", report.Failures)
	}
	if !strings.Contains(report.Failures[0].Error, "CRC32C") {
		t.Fatalf("failure cause = %q, want a CRC32C mismatch", report.Failures[0].Error)
	}

	// Selective degraded recovery over the same damage.
	rec, report, err = c.RecoverModelsPartial(ctx, "mmlib", res.SetID, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Models) != 1 || rec.Models[0] == nil {
		t.Fatalf("selective degraded recovery = %d models, want just model 0", len(rec.Models))
	}
	if report.Skipped != 1 || report.Failures[0].ModelIndex != 2 {
		t.Fatalf("selective report = %+v", report)
	}
}
