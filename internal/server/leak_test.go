package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/obs"
)

// countingTransport tracks every response body handed to the client and
// whether it was closed — the leak detector the client's body hygiene
// is audited with.
type countingTransport struct {
	base   http.RoundTripper
	opened atomic.Int64
	closed atomic.Int64
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	t.opened.Add(1)
	resp.Body = &countedBody{ReadCloser: resp.Body, n: &t.closed}
	return resp, nil
}

type countedBody struct {
	io.ReadCloser
	n    *atomic.Int64
	once sync.Once
}

func (b *countedBody) Close() error {
	b.once.Do(func() { b.n.Add(1) })
	return b.ReadCloser.Close()
}

func (t *countingTransport) leaked() int64 { return t.opened.Load() - t.closed.Load() }

// TestClientClosesBodiesOnAllPaths drives every client method through
// success AND error responses over a counting transport: each response
// body obtained from the transport must be closed exactly once, on
// every branch — non-200 envelopes, decode failures, fallback probes,
// chunk fetches, everything.
func TestClientClosesBodiesOnAllPaths(t *testing.T) {
	ctx := context.Background()
	reg := obs.New()
	stores := core.NewMemStores()
	ts := httptest.NewServer(NewWithMetrics(stores, reg, core.WithDedup()))
	t.Cleanup(ts.Close)

	tr := &countingTransport{base: http.DefaultTransport}
	c := &Client{BaseURL: ts.URL, HTTP: &http.Client{Transport: tr}, Reg: obs.New()}
	c.Cache = memPullCache()

	set := testSet(t, 6)
	res, err := c.Save(ctx, "baseline", set, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Success paths: JSON GETs/POSTs, pull recovery (manifest + chunk
	// streams), selective recovery, metrics, health.
	calls := []func() error{
		func() error { return c.Health(ctx) },
		func() error { _, err := c.Approaches(ctx); return err },
		func() error { _, err := c.List(ctx, "baseline"); return err },
		func() error { _, err := c.Info(ctx, "baseline", res.SetID); return err },
		func() error { _, err := c.Recover(ctx, "baseline", res.SetID); return err },
		func() error { _, err := c.RecoverModels(ctx, "baseline", res.SetID, []int{1, 3}); return err },
		func() error { _, _, err := c.RecoverPartial(ctx, "baseline", res.SetID); return err },
		func() error { _, err := c.Verify(ctx, "baseline"); return err },
		func() error { _, err := c.Metrics(ctx); return err },
		func() error { _, err := c.Du(ctx); return err },
		func() error { _, err := c.Datasets(ctx); return err },
		func() error { _, err := c.Fsck(ctx, false); return err },
	}
	for i, call := range calls {
		if err := call(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	// Error paths: unknown sets, unknown approaches, bad indices —
	// every one returns through decodeError or an early return.
	errCalls := []func() error{
		func() error { _, err := c.Recover(ctx, "baseline", "bl-999999"); return err },
		func() error { _, err := c.Recover(ctx, "nonesuch", "bl-000001"); return err },
		func() error { _, err := c.RecoverModels(ctx, "baseline", "bl-999999", []int{0}); return err },
		func() error { _, err := c.List(ctx, "nonesuch"); return err },
		func() error { _, err := c.Info(ctx, "baseline", "bl-999999"); return err },
		func() error { _, err := c.Prune(ctx, "nonesuch", nil); return err },
		func() error {
			_, err := c.Save(ctx, "nonesuch", set, "", nil, nil)
			return err
		},
	}
	for i, call := range errCalls {
		if err := call(); err == nil {
			t.Fatalf("error call %d unexpectedly succeeded", i)
		}
	}

	if n := tr.leaked(); n != 0 {
		t.Fatalf("%d response bodies leaked (opened %d, closed %d)",
			n, tr.opened.Load(), tr.closed.Load())
	}
	if tr.opened.Load() == 0 {
		t.Fatal("counting transport saw no traffic")
	}
}

// TestChaosTruncatedMultipartIsRetried is the regression for the
// truncation blind spot: a recovery response whose connection died
// after the manifest part but mid-params — delivered with a clean EOF,
// as a dropped chunked connection appears once buffered — must be
// classified as a retryable transport failure and retried, not
// surfaced as a nonsensical size-mismatch error.
func TestChaosTruncatedMultipartIsRetried(t *testing.T) {
	ctx := context.Background()
	set := testSet(t, 6)
	params := setToBytes(set)
	manifest := RecoveryManifest{Arch: set.Arch, NumModels: set.Len()}

	var attempts atomic.Int64
	stub := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		mw := multipart.NewWriter(w)
		w.Header().Set("Content-Type", mw.FormDataContentType())
		mpart, _ := mw.CreateFormField("manifest")
		_ = json.NewEncoder(mpart).Encode(manifest)
		ppart, _ := mw.CreateFormFile("params", "params.bin")
		if n == 1 {
			// Half the params, then return without the closing
			// boundary: the wire shape of a mid-body reset.
			_, _ = ppart.Write(params[:len(params)/2])
			return
		}
		_, _ = ppart.Write(params)
		_ = mw.Close()
	})
	ts := httptest.NewServer(stub)
	t.Cleanup(ts.Close)

	c := &Client{BaseURL: ts.URL, Retry: fastRetry(), Reg: obs.New()}
	manifestGot, paramsGot, err := c.fetchParams(ctx, "/params")
	if err != nil {
		t.Fatalf("truncated multipart not retried: %v", err)
	}
	if attempts.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", attempts.Load())
	}
	if manifestGot.NumModels != set.Len() || len(paramsGot) != len(params) {
		t.Fatalf("retried recovery returned %d models, %d bytes", manifestGot.NumModels, len(paramsGot))
	}
	if n := c.Reg.Counter(MetricClientRetries).Value(); n < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricClientRetries, n)
	}
}

// TestRecoverAbortsConnectionOnMidWriteFailure pins the server half of
// the truncation fix: when the multipart body cannot be completed after
// headers are out, the handler must abort the connection (panic with
// http.ErrAbortHandler) instead of returning normally — a normal return
// ends the chunked body cleanly and the client mistakes the truncated
// response for a complete one.
func TestRecoverAbortsConnectionOnMidWriteFailure(t *testing.T) {
	c, api, _ := newConfigRig(t, obs.New(), Config{})
	res, err := c.Save(context.Background(), "baseline", testSet(t, 4), "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodGet, "/api/baseline/sets/"+res.SetID+"/params", nil)
	req.SetPathValue("approach", "baseline")
	req.SetPathValue("id", res.SetID)
	w := &failingWriter{failAfter: 1}
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("handler panicked with %v, want http.ErrAbortHandler", r)
		}
	}()
	api.handleRecover(w, req)
	t.Fatal("handler returned normally despite a mid-body write failure")
}

// failingWriter accepts failAfter writes, then errors.
type failingWriter struct {
	hdr       http.Header
	writes    int
	failAfter int
}

func (w *failingWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}

func (w *failingWriter) WriteHeader(int) {}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, fmt.Errorf("connection gone")
	}
	return len(p), nil
}
