package mmm_test

import (
	"bytes"
	"fmt"
	"time"

	mmm "github.com/mmm-go/mmm"
)

// The basic round trip: save a fleet with Baseline, recover it exactly.
func Example() {
	stores := mmm.NewMemStores()
	approach := mmm.NewBaseline(stores)

	set, err := mmm.NewModelSet(mmm.FFNN48(), 100, 42)
	if err != nil {
		panic(err)
	}
	res, err := approach.Save(mmm.SaveRequest{Set: set})
	if err != nil {
		panic(err)
	}
	recovered, err := approach.Recover(res.SetID)
	if err != nil {
		panic(err)
	}
	fmt.Println("writes:", res.WriteOps)
	fmt.Println("bit-identical:", set.Equal(recovered))
	// Output:
	// writes: 3
	// bit-identical: true
}

// Update saves only the layers that changed since the base set.
func ExampleUpdate() {
	stores := mmm.NewMemStores()
	u := mmm.NewUpdate(stores)

	set, err := mmm.NewModelSet(mmm.FFNN48(), 50, 7)
	if err != nil {
		panic(err)
	}
	full, err := u.Save(mmm.SaveRequest{Set: set})
	if err != nil {
		panic(err)
	}

	// One model drifts; the derived save persists only its change.
	set.Models[3].Params()[0].Tensor.Data[0] += 0.5
	derived, err := u.Save(mmm.SaveRequest{Set: set, Base: full.SetID})
	if err != nil {
		panic(err)
	}
	fmt.Println("derived is smaller:", derived.BytesWritten < full.BytesWritten/10)

	got, err := u.Recover(derived.SetID)
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered exactly:", set.Equal(got))
	// Output:
	// derived is smaller: true
	// recovered exactly: true
}

// Selective recovery pulls single models out of a large archived set —
// the paper's post-accident analysis pattern.
func ExamplePartialRecoverer() {
	stores := mmm.NewMemStores()
	b := mmm.NewBaseline(stores)
	set, err := mmm.NewModelSet(mmm.FFNN48(), 500, 1)
	if err != nil {
		panic(err)
	}
	res, err := b.Save(mmm.SaveRequest{Set: set})
	if err != nil {
		panic(err)
	}

	rec, err := b.RecoverModels(res.SetID, []int{17, 230})
	if err != nil {
		panic(err)
	}
	fmt.Println("models recovered:", len(rec.Models))
	fmt.Println("cell 17 exact:", set.Models[17].ParamsEqual(rec.Models[17]))
	// Output:
	// models recovered: 2
	// cell 17 exact: true
}

// Advise recommends an approach for a deployment scenario (§4.5).
func ExampleAdvise() {
	rec, err := mmm.Advise(mmm.Scenario{
		NumModels: 5000, ParamCount: 4993, UpdateRate: 0.10,
		SavesPerRecovery: 1000, RetrainCost: 30 * time.Second,
		StorageWeight: 10, SaveWeight: 1, RecoverWeight: 0.01,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(rec.Approach)
	// Output:
	// Provenance
}

// Deterministic training is the foundation of provenance recovery:
// equal inputs give bit-identical parameters.
func ExampleTrain() {
	spec := mmm.DatasetSpec{
		Kind: "battery", CellID: 1, SoH: 1, Samples: 50, NoiseStd: 0.002, Seed: 5,
	}
	data, err := mmm.GenerateDataset(spec)
	if err != nil {
		panic(err)
	}
	cfg := mmm.TrainConfig{
		Epochs: 2, BatchSize: 10, LearningRate: 0.05, Loss: "mse", Seed: 9,
	}
	run := func() *mmm.Model {
		m, err := mmm.NewModel(mmm.FFNN48(), 11)
		if err != nil {
			panic(err)
		}
		if _, err := mmm.Train(m, data, cfg); err != nil {
			panic(err)
		}
		return m
	}
	a, b := run(), run()
	fmt.Println("bit-identical after training:", a.ParamsEqual(b))
	// Output:
	// bit-identical after training: true
}

// SaveModel writes one model as a self-contained deployable file.
func ExampleSaveModel() {
	m, err := mmm.NewModel(mmm.FFNN48(), 3)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := mmm.SaveModel(m, &buf); err != nil {
		panic(err)
	}
	loaded, err := mmm.LoadModel(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(loaded.Arch.Name, loaded.ParamCount())
	fmt.Println("exact:", m.ParamsEqual(loaded))
	// Output:
	// FFNN-48 4993
	// exact: true
}
