// Imageclass demonstrates the paper's second use case: managing image
// classification models (the 6,882-parameter CIFAR CNN). A handful of
// per-camera classifiers are trained, managed with the Update approach,
// updated on fresh data, and recovered — with classification accuracy
// checked before and after the round trip.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mmm "github.com/mmm-go/mmm"
)

func main() {
	ctx := context.Background()
	n := flag.Int("n", 4, "number of classifiers")
	samples := flag.Int("samples", 40, "training images per classifier")
	flag.Parse()

	stores := mmm.NewMemStores()
	approach := mmm.NewUpdate(stores)

	set, err := mmm.NewModelSet(mmm.CIFARNet(), *n, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("managing %d CIFAR classifiers (%d parameters each)\n",
		set.Len(), set.Arch.ParamCount())

	// Initial training: every classifier learns its own camera's data.
	trainCfg := mmm.TrainConfig{
		Epochs: 20, BatchSize: 4, LearningRate: 0.05, Loss: "cross_entropy",
	}
	datasets := make([]*mmm.Dataset, *n)
	for i := range datasets {
		spec := mmm.DatasetSpec{Kind: "cifar", CellID: i, Cycle: 0, Samples: *samples, Seed: 99}
		if _, err := stores.Datasets.Put(spec); err != nil {
			log.Fatal(err)
		}
		datasets[i], err = mmm.GenerateDataset(spec)
		if err != nil {
			log.Fatal(err)
		}
		cfg := trainCfg
		cfg.Seed = uint64(i)
		if _, err := mmm.Train(set.Models[i], datasets[i], cfg); err != nil {
			log.Fatal(err)
		}
	}
	for i, m := range set.Models {
		fmt.Printf("  classifier %d: training accuracy %.0f%%\n", i, 100*accuracy(m, datasets[i]))
	}

	// Save the trained set (initial save = full snapshot + hash info).
	res, err := approach.SaveContext(ctx, mmm.SaveRequest{Set: set})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved initial set %s: %.3f MB\n", res.SetID, float64(res.BytesWritten)/1e6)

	// One camera drifts: retrain only classifier 0 on cycle-1 data.
	spec := mmm.DatasetSpec{Kind: "cifar", CellID: 0, Cycle: 1, Samples: *samples, Seed: 99}
	if _, err := stores.Datasets.Put(spec); err != nil {
		log.Fatal(err)
	}
	fresh, err := mmm.GenerateDataset(spec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := trainCfg
	cfg.Seed = 1000
	if _, err := mmm.Train(set.Models[0], fresh, cfg); err != nil {
		log.Fatal(err)
	}

	// The derived save persists only classifier 0's changed layers.
	res2, err := approach.SaveContext(ctx, mmm.SaveRequest{Set: set, Base: res.SetID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved derived set %s after retraining classifier 0: %.3f MB (%.1f%% of initial)\n",
		res2.SetID, float64(res2.BytesWritten)/1e6,
		100*float64(res2.BytesWritten)/float64(res.BytesWritten))

	// Recover and verify the models still classify identically.
	recovered, err := approach.RecoverContext(ctx, res2.SetID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered set bit-identical: %v\n", set.Equal(recovered))
	fmt.Printf("recovered classifier 0 accuracy on fresh data: %.0f%%\n",
		100*accuracy(recovered.Models[0], fresh))
}

// accuracy returns the fraction of samples whose argmax prediction
// matches the one-hot label.
func accuracy(m *mmm.Model, data mmm.TrainingData) float64 {
	correct := 0
	for i := 0; i < data.Len(); i++ {
		x, y := data.Sample(i)
		pred := m.Forward(x)
		if argmax(pred.Data) == argmax(y.Data) {
			correct++
		}
	}
	return float64(correct) / float64(data.Len())
}

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
