// Advisor demonstrates the heuristic approach selection the paper
// names as future work (§4.5): given a deployment scenario — fleet
// size, update rate, how often archives are recovered, what storage
// and latency cost — recommend a management approach and explain why.
package main

import (
	"fmt"
	"log"
	"time"

	mmm "github.com/mmm-go/mmm"
)

func main() {
	scenarios := []struct {
		label string
		s     mmm.Scenario
	}{
		{
			// The paper's own scenario: archive every set, recover only
			// after incidents.
			label: "EV battery fleet: 5000 cell models, archives rarely recovered",
			s: mmm.Scenario{
				NumModels: 5000, ParamCount: 4993, UpdateRate: 0.10,
				SavesPerRecovery: 1000, RetrainCost: 30 * time.Second,
				StorageWeight: 10, SaveWeight: 1, RecoverWeight: 0.01,
			},
		},
		{
			label: "Smart-home devices: storage-constrained, weekly restores",
			s: mmm.Scenario{
				NumModels: 2000, ParamCount: 10075, UpdateRate: 0.20,
				SavesPerRecovery: 7, RetrainCost: 10 * time.Minute,
				StorageWeight: 5, SaveWeight: 1, RecoverWeight: 2,
			},
		},
		{
			label: "Incident forensics lab: recovery latency is everything",
			s: mmm.Scenario{
				NumModels: 5000, ParamCount: 4993, UpdateRate: 0.10,
				SavesPerRecovery: 2, RetrainCost: 30 * time.Second,
				StorageWeight: 0.01, SaveWeight: 0.1, RecoverWeight: 10,
			},
		},
	}

	for _, sc := range scenarios {
		rec, err := mmm.Advise(sc.s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", sc.label)
		fmt.Printf("  recommendation: %s — %s\n", rec.Approach, rec.Rationale)
		fmt.Printf("  ranking:")
		for _, r := range rec.Ranking {
			fmt.Printf("  %s (%.2f)", r.Name, r.Cost)
		}
		fmt.Println()
		fmt.Println()
	}
}
