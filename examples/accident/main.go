// Accident demonstrates the paper's motivating access pattern: "We
// save every model ever generated for analytical and archival purposes
// but only recover a selected number of models, for example, after an
// accident."
//
// A battery fleet is archived over several update cycles with the
// Update approach. Then an incident hits three cells, and the analyst
// recovers exactly those three cell models — from the latest archive
// and from the archive two cycles earlier (to compare pre- and
// post-aging behaviour) — without materializing the other thousands of
// models.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mmm "github.com/mmm-go/mmm"
)

func main() {
	ctx := context.Background()
	n := flag.Int("n", 500, "fleet size")
	flag.Parse()

	registry := mmm.NewDatasetRegistry()
	stores := mmm.NewMemStores()
	stores.Datasets = registry
	approach := mmm.NewUpdate(stores)

	cfg := mmm.DefaultWorkload()
	cfg.NumModels = *n
	cfg.SamplesPerDataset = 80
	fleet, err := mmm.NewFleet(cfg, registry)
	if err != nil {
		log.Fatal(err)
	}

	// Archive U1 and three update cycles.
	res, err := approach.SaveContext(ctx, mmm.SaveRequest{Set: fleet.Set})
	if err != nil {
		log.Fatal(err)
	}
	ids := []string{res.SetID}
	var lastUpdates []mmm.ModelUpdate
	for c := 1; c <= 3; c++ {
		updates, err := fleet.RunCycle()
		if err != nil {
			log.Fatal(err)
		}
		res, err = approach.SaveContext(ctx, mmm.SaveRequest{
			Set: fleet.Set, Base: ids[len(ids)-1], Updates: updates, Train: fleet.TrainInfo(),
		})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, res.SetID)
		lastUpdates = updates
		fmt.Printf("archived cycle %d as %s (%.3f MB)\n", c, res.SetID, float64(res.BytesWritten)/1e6)
	}

	// The incident hits three of the cells whose models were just
	// updated — the cells that diverged from their expected behaviour.
	damaged := []int{
		lastUpdates[0].ModelIndex,
		lastUpdates[1].ModelIndex,
		lastUpdates[len(lastUpdates)-1].ModelIndex,
	}
	fmt.Printf("\nincident on cells %v — recovering only those models\n", damaged)

	readBefore := stores.Blobs.Stats().BytesRead
	latest, err := approach.RecoverModelsContext(ctx, ids[len(ids)-1], damaged)
	if err != nil {
		log.Fatal(err)
	}
	earlier, err := approach.RecoverModelsContext(ctx, ids[1], damaged)
	if err != nil {
		log.Fatal(err)
	}
	readMB := float64(stores.Blobs.Stats().BytesRead-readBefore) / 1e6
	totalMB := float64(fleet.Set.Len()*fleet.Set.Arch.ParamBytes()) / 1e6
	fmt.Printf("read %.3f MB from the blob store for both recoveries (full set is %.1f MB per snapshot)\n",
		readMB, totalMB)

	// Compare each damaged cell's model now vs two cycles ago: the
	// voltage predicted for a standard load probe shifts as the cell
	// ages and its model is updated.
	probe := probeInput()
	fmt.Println("\ncell   V̂(latest)   V̂(2 cycles ago)   drift")
	for _, cell := range damaged {
		now := latest.Models[cell].Forward(probe).Data[0]
		then := earlier.Models[cell].Forward(probe).Data[0]
		fmt.Printf("%4d   %9.4f   %15.4f   %+.4f\n", cell, now, then, now-then)
	}

	// Sanity: the recovered models match the live fleet bit for bit.
	exact := true
	for _, cell := range damaged {
		if !fleet.Set.Models[cell].ParamsEqual(latest.Models[cell]) {
			exact = false
		}
	}
	fmt.Printf("\nrecovered models bit-identical to the fleet: %v\n", exact)
}

// probeInput is a normalized standard probe point (moderate discharge
// current, warm cell, mid charge, mid state of charge).
func probeInput() *mmm.Tensor {
	return mmm.NewTensor([]float32{0.8, 0.5, 0.0, 0.0}, 4)
}
