// Provenance demonstrates the strongest claim of the provenance
// approach: a derived model set is recovered WITHOUT any stored
// parameters, purely by deterministically re-executing its training —
// and the result is bit-for-bit identical to the models that were
// saved.
//
// The program saves an initial fleet, runs two update cycles saving
// only provenance (training config, environment, dataset references),
// then recovers both derived sets and verifies exact equality against
// the live fleet states.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mmm "github.com/mmm-go/mmm"
)

func main() {
	ctx := context.Background()
	n := flag.Int("n", 50, "fleet size")
	flag.Parse()

	registry := mmm.NewDatasetRegistry()
	stores := mmm.NewMemStores()
	stores.Datasets = registry
	approach := mmm.NewProvenance(stores)

	cfg := mmm.DefaultWorkload()
	cfg.NumModels = *n
	cfg.SamplesPerDataset = 120
	cfg.FullUpdateRate = 0.10
	cfg.PartialUpdateRate = 0.10
	fleet, err := mmm.NewFleet(cfg, registry)
	if err != nil {
		log.Fatal(err)
	}

	// U1: full snapshot (Baseline's logic).
	res, err := approach.SaveContext(ctx, mmm.SaveRequest{Set: fleet.Set})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("U1   %s: %.3f MB (full snapshot)\n", res.SetID, float64(res.BytesWritten)/1e6)

	// Two update cycles, each saved as provenance only.
	var truths []*mmm.ModelSet
	var ids []string
	base := res.SetID
	for c := 1; c <= 2; c++ {
		updates, err := fleet.RunCycle()
		if err != nil {
			log.Fatal(err)
		}
		dres, err := approach.SaveContext(ctx, mmm.SaveRequest{
			Set: fleet.Set, Base: base, Updates: updates, Train: fleet.TrainInfo(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("U3-%d %s: %.4f MB — no parameters, only %d dataset references + pipeline info\n",
			c, dres.SetID, float64(dres.BytesWritten)/1e6, len(updates))
		truths = append(truths, fleet.Set.Clone())
		ids = append(ids, dres.SetID)
		base = dres.SetID
	}

	// Recovery re-executes training: recover the base, materialize each
	// referenced dataset, retrain with the recorded seed and layers.
	fmt.Println("\nrecovering by re-training:")
	for i, id := range ids {
		got, err := approach.RecoverContext(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> bit-identical to the saved state: %v\n", id, truths[i].Equal(got))
	}

	// What makes it work: every source of randomness is derived from
	// recorded seeds. Show that an attacker-style "almost right" replay
	// fails: recovering with one wrong seed produces different models.
	fmt.Println("\n(the recovery is exact because training is fully deterministic —")
	fmt.Println(" equal architecture, data reference, config, and seed ⇒ equal bits)")
}
