// Fleetsync demonstrates the paper's deployment picture (Figure 1) end
// to end over the network: a central management service receives model
// sets from a fleet gateway, and an analyst later pulls selected
// models back out — all through the HTTP API.
//
// The example starts the service in-process on a loopback listener;
// point the client at a remote `mmserve` for the real thing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"

	mmm "github.com/mmm-go/mmm"
)

func main() {
	n := flag.Int("n", 120, "fleet size")
	flag.Parse()

	// The central manager (normally: cmd/mmserve on another machine).
	manager := httptest.NewServer(mmm.NewManagementServer(mmm.NewMemStores()))
	defer manager.Close()
	ctx := context.Background()
	client := &mmm.ManagementClient{BaseURL: manager.URL}
	if err := client.Health(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("management service up at %s\n", manager.URL)

	// The fleet gateway: runs the cells, retrains models, pushes sets.
	registry := mmm.NewDatasetRegistry()
	cfg := mmm.DefaultWorkload()
	cfg.NumModels = *n
	cfg.SamplesPerDataset = 60
	cfg.Epochs = 1
	fleet, err := mmm.NewFleet(cfg, registry)
	if err != nil {
		log.Fatal(err)
	}

	// U1: push the initial fleet with the Update approach.
	res, err := client.Save(ctx, "update", fleet.Set, "", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pushed initial set %s: %.3f MB over the wire\n",
		res.SetID, float64(res.BytesWritten)/1e6)

	// Two update cycles: retrain locally, register the datasets with
	// the manager, push the derived sets.
	base := res.SetID
	for c := 1; c <= 2; c++ {
		updates, err := fleet.RunCycle()
		if err != nil {
			log.Fatal(err)
		}
		for _, u := range updates {
			spec, err := registry.Spec(u.DatasetID)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := client.PutDataset(ctx, spec); err != nil {
				log.Fatal(err)
			}
		}
		dres, err := client.Save(ctx, "update", fleet.Set, base, updates, fleet.TrainInfo())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pushed cycle %d as %s: %.3f MB (%d models updated)\n",
			c, dres.SetID, float64(dres.BytesWritten)/1e6, len(updates))
		base = dres.SetID
	}

	// The analyst: inspect lineage, then pull three cells' models.
	chain, err := client.Info(ctx, "update", base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlineage of %s:\n", base)
	for _, info := range chain {
		fmt.Printf("  %s kind=%-7s depth=%d models=%d\n",
			info.SetID, info.Kind, info.Depth, info.NumModels)
	}

	pr, err := client.RecoverModels(ctx, "update", base, []int{3, 57, 110})
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for idx, m := range pr.Models {
		if !fleet.Set.Models[idx].ParamsEqual(m) {
			exact = false
		}
	}
	fmt.Printf("\npulled %d models over HTTP; bit-identical to the fleet: %v\n",
		len(pr.Models), exact)

	// Housekeeping: server-side integrity check.
	issues, err := client.Verify(ctx, "update")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server-side verification: %d issue(s)\n", len(issues))
}
