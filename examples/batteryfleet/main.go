// Batteryfleet runs the paper's running example end to end: a fleet of
// battery-cell models goes through the initial deployment (use case U1)
// and three update cycles (use case U3); each resulting model set is
// saved with all four management approaches, and the program reports
// the storage each approach consumed per use case — a small-scale
// reproduction of the paper's Figure 3 through the public API.
//
// Run with a larger fleet via: go run ./examples/batteryfleet -n 5000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mmm "github.com/mmm-go/mmm"
)

func main() {
	ctx := context.Background()
	n := flag.Int("n", 250, "fleet size (the paper uses 5000)")
	cycles := flag.Int("cycles", 3, "number of update cycles")
	flag.Parse()

	// One shared dataset registry: the training data exists regardless
	// of model management (the paper's assumption behind Provenance).
	registry := mmm.NewDatasetRegistry()

	cfg := mmm.DefaultWorkload()
	cfg.NumModels = *n
	cfg.SamplesPerDataset = 100
	fleet, err := mmm.NewFleet(cfg, registry)
	if err != nil {
		log.Fatal(err)
	}

	// Four approaches, each with its own stores.
	type rig struct {
		approach mmm.Approach
		baseID   string
		perUC    []float64
	}
	newStores := func() mmm.Stores {
		st := mmm.NewMemStores()
		st.Datasets = registry
		return st
	}
	rigs := []*rig{
		{approach: mmm.NewMMlibBase(newStores())},
		{approach: mmm.NewBaseline(newStores())},
		{approach: mmm.NewUpdate(newStores())},
		{approach: mmm.NewProvenance(newStores())},
	}

	// U1: save the freshly deployed fleet.
	for _, r := range rigs {
		res, err := r.approach.SaveContext(ctx, mmm.SaveRequest{Set: fleet.Set})
		if err != nil {
			log.Fatalf("%s: %v", r.approach.Name(), err)
		}
		r.baseID = res.SetID
		r.perUC = append(r.perUC, float64(res.BytesWritten)/1e6)
	}

	// U3 cycles: some cells age and their models are retrained.
	for c := 1; c <= *cycles; c++ {
		updates, err := fleet.RunCycle()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d: retrained %d of %d models\n", c, len(updates), fleet.Set.Len())
		for _, r := range rigs {
			res, err := r.approach.SaveContext(ctx, mmm.SaveRequest{
				Set: fleet.Set, Base: r.baseID,
				Updates: updates, Train: fleet.TrainInfo(),
			})
			if err != nil {
				log.Fatalf("%s: %v", r.approach.Name(), err)
			}
			r.baseID = res.SetID
			r.perUC = append(r.perUC, float64(res.BytesWritten)/1e6)
		}
	}

	// The paper's Figure 3 as a table.
	fmt.Printf("\nstorage consumption per use case (MB, n=%d)\n", *n)
	fmt.Printf("%-12s", "approach")
	fmt.Printf("%10s", "U1")
	for c := 1; c <= *cycles; c++ {
		fmt.Printf("%10s", fmt.Sprintf("U3-%d", c))
	}
	fmt.Println()
	for _, r := range rigs {
		fmt.Printf("%-12s", r.approach.Name())
		for _, mb := range r.perUC {
			fmt.Printf("%10.3f", mb)
		}
		fmt.Println()
	}

	// Recover the final set from every approach and cross-check: all
	// four representations must decode to the same models.
	fmt.Println("\nverifying recovery of the final set:")
	for _, r := range rigs {
		got, err := r.approach.RecoverContext(ctx, r.baseID)
		if err != nil {
			log.Fatalf("%s: %v", r.approach.Name(), err)
		}
		fmt.Printf("  %-12s -> %d models, bit-identical to fleet: %v\n",
			r.approach.Name(), got.Len(), fleet.Set.Equal(got))
	}
}
