// Quickstart: save a set of 1,000 battery-cell models with the
// Baseline approach and recover it bit-exactly.
package main

import (
	"context"
	"fmt"
	"log"

	mmm "github.com/mmm-go/mmm"
)

func main() {
	ctx := context.Background()
	// Stores: in-memory here; use mmm.OpenDirStores for durability.
	stores := mmm.NewMemStores()
	approach := mmm.NewBaseline(stores)

	// A fleet of 1,000 FFNN-48 battery models (4,993 parameters each),
	// reproducibly initialized.
	set, err := mmm.NewModelSet(mmm.FFNN48(), 1000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Saving the whole set costs three store writes: one metadata
	// document, one architecture definition, one parameter binary.
	res, err := approach.SaveContext(ctx, mmm.SaveRequest{Set: set})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %d models as %s: %.2f MB in %d store writes\n",
		set.Len(), res.SetID, float64(res.BytesWritten)/1e6, res.WriteOps)

	recovered, err := approach.RecoverContext(ctx, res.SetID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d models; bit-identical: %v\n",
		recovered.Len(), set.Equal(recovered))
}
