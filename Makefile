# Developer entry points. CI should run `make check`.

GO ?= go

.PHONY: build test vet race fsck-smoke fuzz check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# End-to-end durability smoke test through the real CLI and a real
# on-disk store: save a fleet, assert fsck passes, flip a single byte
# in a saved parameter blob, and assert fsck detects the damage.
fsck-smoke: build
	@set -eu; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/mmstore init -dir "$$tmp/store" -approach baseline -n 5 -samples 30 >/dev/null; \
	$(GO) run ./cmd/mmstore fsck -dir "$$tmp/store" >/dev/null; \
	blob="$$tmp/store/blobs/baseline/bl-000001/params.bin"; \
	byte=$$(od -An -tu1 -j100 -N1 "$$blob" | tr -d ' '); \
	printf "$$(printf '\\%03o' $$(( (byte + 1) % 256 )))" | dd of="$$blob" bs=1 seek=100 conv=notrunc status=none; \
	if $(GO) run ./cmd/mmstore fsck -dir "$$tmp/store" >/dev/null 2>&1; then \
		echo "fsck-smoke FAILED: flipped byte not detected"; exit 1; \
	fi; \
	echo "fsck-smoke OK: corruption detected"

# Short-budget fuzzing of the two property suites: checksummed blob
# round trips and the sim-vs-dir backend oracle. The committed seed
# corpora under testdata/fuzz/ always run; the small time budget adds
# fresh mutated inputs on top.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzChecksumRoundTrip -fuzztime=10s ./internal/storage/blobstore
	$(GO) test -run=NONE -fuzz=FuzzBackendOracle -fuzztime=10s ./internal/storage/sim

# The full gate: compile everything, vet, run the suite twice —
# once plain, once under the race detector — then the durability
# smoke test and the short fuzz pass.
check: build vet test race fsck-smoke fuzz

bench:
	$(GO) test -bench=. -benchmem
