# Developer entry points. CI should run `make check`.

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full gate: compile everything, vet, run the suite twice —
# once plain, once under the race detector.
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem
