# Developer entry points. CI should run `make check`.

GO ?= go

.PHONY: build test vet race race-stress fsck-smoke metrics-smoke chaos-smoke dedup-smoke codec-smoke pull-smoke scrub-smoke cluster-smoke fuzz check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Serving-tier concurrency battery: the chunk cache's eviction/promotion
# machinery, the CAS read paths (parallel recover + save + GC +
# eviction with pinned in-flight reads), the background scrubber
# racing saves, recoveries, releases, and GC, and the cluster router's
# membership churn under concurrent routed saves — all under the race
# detector, repeated to shake out schedule-dependent interleavings.
race-stress:
	$(GO) test -race -count=3 -run 'Stress' ./internal/storage/cache ./internal/storage/cas ./internal/scrub ./internal/cluster

# End-to-end durability smoke test through the real CLI and a real
# on-disk store: save a fleet, assert fsck passes, flip a single byte
# in a saved parameter blob, and assert fsck detects the damage.
fsck-smoke: build
	@set -eu; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/mmstore init -dir "$$tmp/store" -approach baseline -n 5 -samples 30 >/dev/null; \
	$(GO) run ./cmd/mmstore fsck -dir "$$tmp/store" >/dev/null; \
	blob="$$tmp/store/blobs/baseline/bl-000001/params.bin"; \
	byte=$$(od -An -tu1 -j100 -N1 "$$blob" | tr -d ' '); \
	printf "$$(printf '\\%03o' $$(( (byte + 1) % 256 )))" | dd of="$$blob" bs=1 seek=100 conv=notrunc status=none; \
	if $(GO) run ./cmd/mmstore fsck -dir "$$tmp/store" >/dev/null 2>&1; then \
		echo "fsck-smoke FAILED: flipped byte not detected"; exit 1; \
	fi; \
	echo "fsck-smoke OK: corruption detected"

# End-to-end observability smoke test: start mmserve on a scratch
# store, save a tiny set over HTTP, and assert /metrics exposes a
# nonzero TTS histogram plus backend counters.
metrics-smoke: build
	@set -eu; \
	tmp=$$(mktemp -d); \
	srv=; \
	trap 'test -z "$$srv" || kill "$$srv" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/mmserve" ./cmd/mmserve; \
	"$$tmp/mmserve" -dir "$$tmp/store" -addr 127.0.0.1:18471 >/dev/null 2>&1 & srv=$$!; \
	up=; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18471/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.1; \
	done; \
	test -n "$$up" || { echo "metrics-smoke FAILED: server never came up"; exit 1; }; \
	printf '%s' '{"arch":{"name":"smoke-ffnn","input":[4],"layers":[{"name":"fc1","kind":"linear","in":4,"out":1}]},"num_models":2}' > "$$tmp/manifest.json"; \
	head -c 40 /dev/zero > "$$tmp/params.bin"; \
	curl -sf -F "manifest=<$$tmp/manifest.json" -F "params=@$$tmp/params.bin" \
		http://127.0.0.1:18471/api/baseline/sets >/dev/null; \
	curl -sf http://127.0.0.1:18471/metrics > "$$tmp/metrics.txt"; \
	grep -Eq 'mmm_save_seconds_count\{approach="Baseline"\} [1-9]' "$$tmp/metrics.txt" || { \
		echo "metrics-smoke FAILED: no nonzero TTS histogram"; exit 1; }; \
	grep -q 'mmm_backend_ops_total' "$$tmp/metrics.txt" || { \
		echo "metrics-smoke FAILED: no backend counters"; exit 1; }; \
	echo "metrics-smoke OK: /metrics exposes save timings"

# Resilience smoke test: the chaos suite drives seeded network-fault
# save/recover round trips (injected resets, truncation, 503 bursts),
# graceful-drain and drain-deadline shutdown against a real listener,
# and degraded recovery over HTTP — all under the race detector, since
# drain and retry paths are where data races would hide.
chaos-smoke:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/server

# Dedup smoke test: the U1→U3-3 workload with and without WithDedup
# for every approach — physical bytes must shrink, recovery must stay
# bit-identical, and the chunk lifecycle (prune sharing, GC, fsck,
# crash enumeration) must hold under the race detector.
dedup-smoke:
	$(GO) test -race -count=1 -run 'TestDedup|TestCrashEnumerationDedup' ./internal/core
	$(GO) test -race -count=1 -run 'TestRunDedupStorage' ./internal/experiments

# Codec smoke test: every codec (raw, zlib, tensor-LZ) through the
# real CLI against a real on-disk store — init, an update cycle,
# bit-identical recovery, du, and a flagless fsck — plus the codec
# matrix suite under the race detector. Stores written with any codec
# must read back with none configured.
codec-smoke:
	$(GO) test -race -count=1 -run 'TestCodec|TestPreCodec|TestCorruptEncoded|TestDiffDocUnknown|TestDedupCodecShares' ./internal/core
	$(GO) test -race -count=1 ./internal/codec
	@set -eu; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	for codec in none zlib tlz; do \
		dir="$$tmp/store-$$codec"; \
		$(GO) run -race ./cmd/mmstore init -dir "$$dir" -approach update -codec "$$codec" -dedup -n 4 -samples 30 >/dev/null; \
		$(GO) run -race ./cmd/mmstore cycle -dir "$$dir" -approach update -codec "$$codec" -dedup -base up-000001 -samples 30 >/dev/null; \
		$(GO) run -race ./cmd/mmstore recover -dir "$$dir" -approach update -set up-000002 >/dev/null; \
		$(GO) run -race ./cmd/mmstore du -dir "$$dir" > "$$tmp/du.txt"; \
		grep -q "codec $$codec" "$$tmp/du.txt" || { \
			echo "codec-smoke FAILED: du does not report codec $$codec"; exit 1; }; \
		$(GO) run -race ./cmd/mmstore fsck -dir "$$dir" >/dev/null || { \
			echo "codec-smoke FAILED: fsck rejects a $$codec store"; exit 1; }; \
	done; \
	echo "codec-smoke OK: all codecs save, recover, and fsck clean"

# Pull-protocol smoke test: the pull/chunk-endpoint/resume suite under
# the race detector, then the real path end to end — a race-built
# mmserve with a fault-injecting listener, a dedup set saved over HTTP
# through the CLI, and two chunk-wise recoveries against an on-disk
# pull cache (cold fill, then warm re-pull) through the chaotic
# listener.
pull-smoke:
	$(GO) test -race -count=1 -run 'TestPull|TestChunk|TestDecodePullManifest|TestClientClosesBodies' ./internal/server
	@set -eu; \
	tmp=$$(mktemp -d); \
	srv=; \
	trap 'test -z "$$srv" || kill "$$srv" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o "$$tmp/mmserve" ./cmd/mmserve; \
	"$$tmp/mmserve" -dir "$$tmp/store" -dedup -addr 127.0.0.1:18473 \
		-chaos-seed 7 -chaos-max-faults 6 >/dev/null 2>&1 & srv=$$!; \
	$(GO) run -race ./cmd/mmstore init -server http://127.0.0.1:18473 \
		-approach baseline -n 6 >/dev/null; \
	$(GO) run -race ./cmd/mmstore recover -server http://127.0.0.1:18473 \
		-approach baseline -set bl-000001 -pull-cache "$$tmp/cache" >/dev/null; \
	chunks=$$(find "$$tmp/cache/cas/chunks" -type f | wc -l); \
	test "$$chunks" -ge 1 || { \
		echo "pull-smoke FAILED: cold pull left no chunks in the cache"; exit 1; }; \
	$(GO) run -race ./cmd/mmstore recover -server http://127.0.0.1:18473 \
		-approach baseline -set bl-000001 -pull-cache "$$tmp/cache" >/dev/null; \
	echo "pull-smoke OK: chunk-wise recovery through a chaotic listener, $$chunks chunks cached"

# Self-healing smoke test through the real CLI and real on-disk
# stores: init two byte-identical dedup stores (same deterministic
# seed), flip a byte in one chunk of the first, and run the heal loop —
# scrub detects and quarantines the rot (command fails, recovery fails
# fast), scrub -repair-from a durable mmserve over the second store
# restores the chunk, and fsck plus a verified recovery prove the store
# is whole again.
scrub-smoke: build
	@set -eu; \
	tmp=$$(mktemp -d); \
	srv=; \
	trap 'test -z "$$srv" || kill "$$srv" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/mmstore init -dir "$$tmp/store" -approach baseline -dedup -n 5 -samples 30 >/dev/null; \
	$(GO) run ./cmd/mmstore init -dir "$$tmp/peer" -approach baseline -dedup -n 5 -samples 30 >/dev/null; \
	chunk=$$(find "$$tmp/store/blobs/cas/chunks" -type f -size +0c | head -n 1); \
	test -n "$$chunk" || { echo "scrub-smoke FAILED: no chunk files"; exit 1; }; \
	byte=$$(od -An -tu1 -j10 -N1 "$$chunk" | tr -d ' '); \
	printf "$$(printf '\\%03o' $$(( (byte + 1) % 256 )))" | dd of="$$chunk" bs=1 seek=10 conv=notrunc status=none; \
	if $(GO) run ./cmd/mmstore scrub -dir "$$tmp/store" -full >/dev/null 2>&1; then \
		echo "scrub-smoke FAILED: rot not detected"; exit 1; \
	fi; \
	if $(GO) run ./cmd/mmstore recover -dir "$$tmp/store" -approach baseline -dedup -set bl-000001 >/dev/null 2>&1; then \
		echo "scrub-smoke FAILED: recover served a quarantined store"; exit 1; \
	fi; \
	$(GO) build -o "$$tmp/mmserve" ./cmd/mmserve; \
	"$$tmp/mmserve" -dir "$$tmp/peer" -dedup -addr 127.0.0.1:18475 >/dev/null 2>&1 & srv=$$!; \
	up=; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18475/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.1; \
	done; \
	test -n "$$up" || { echo "scrub-smoke FAILED: peer never came up"; exit 1; }; \
	$(GO) run ./cmd/mmstore scrub -dir "$$tmp/store" -full -repair-from http://127.0.0.1:18475 >/dev/null; \
	$(GO) run ./cmd/mmstore fsck -dir "$$tmp/store" >/dev/null; \
	$(GO) run ./cmd/mmstore recover -dir "$$tmp/store" -approach baseline -dedup \
		-set bl-000001 -verify-against bl-000001 >/dev/null; \
	echo "scrub-smoke OK: rot quarantined, healed from peer, store verified whole"

# Cluster smoke test through the real binaries: three mmserve nodes on
# scratch stores behind an mmrouter at R=2, a save workload routed
# through the router, one node killed mid-workload — every set must
# still recover through the router from its surviving replica, and the
# router's /metrics must expose the routed-request series.
cluster-smoke: build
	@set -eu; \
	tmp=$$(mktemp -d); \
	pids=; \
	trap 'for p in $$pids; do kill "$$p" 2>/dev/null || true; done; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/mmserve" ./cmd/mmserve; \
	$(GO) build -o "$$tmp/mmrouter" ./cmd/mmrouter; \
	"$$tmp/mmserve" -dir "$$tmp/node-a" -dedup -addr 127.0.0.1:18481 >/dev/null 2>&1 & pids="$$pids $$!"; \
	"$$tmp/mmserve" -dir "$$tmp/node-b" -dedup -addr 127.0.0.1:18482 >/dev/null 2>&1 & nodeb=$$!; pids="$$pids $$nodeb"; \
	"$$tmp/mmserve" -dir "$$tmp/node-c" -dedup -addr 127.0.0.1:18483 >/dev/null 2>&1 & pids="$$pids $$!"; \
	for port in 18481 18482 18483; do \
		up=; \
		for i in $$(seq 1 50); do \
			if curl -sf "http://127.0.0.1:$$port/healthz" >/dev/null 2>&1; then up=1; break; fi; \
			sleep 0.1; \
		done; \
		test -n "$$up" || { echo "cluster-smoke FAILED: node on $$port never came up"; exit 1; }; \
	done; \
	"$$tmp/mmrouter" -addr 127.0.0.1:18484 -replicas 2 \
		-nodes node-a=http://127.0.0.1:18481,node-b=http://127.0.0.1:18482,node-c=http://127.0.0.1:18483 \
		>/dev/null 2>&1 & pids="$$pids $$!"; \
	up=; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18484/readyz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.1; \
	done; \
	test -n "$$up" || { echo "cluster-smoke FAILED: router never became ready"; exit 1; }; \
	for i in 1 2 3; do \
		$(GO) run ./cmd/mmstore init -server http://127.0.0.1:18484 -approach baseline -n 4 -seed "$$i" >/dev/null; \
	done; \
	ids=$$(curl -sf http://127.0.0.1:18484/api/baseline/sets | tr '",' '\n\n' | grep '^r-g' || true); \
	test -n "$$ids" || { echo "cluster-smoke FAILED: router lists no saved sets"; exit 1; }; \
	first=$$(printf '%s\n' $$ids | head -n 1); \
	curl -sf "http://127.0.0.1:18484/api/baseline/sets/$$first/params" >/dev/null || { \
		echo "cluster-smoke FAILED: recovery through router before fault"; exit 1; }; \
	kill "$$nodeb"; \
	for id in $$ids; do \
		curl -sf "http://127.0.0.1:18484/api/baseline/sets/$$id/params" >/dev/null || { \
			echo "cluster-smoke FAILED: set $$id unreadable after node kill"; exit 1; }; \
	done; \
	curl -sf http://127.0.0.1:18484/metrics | grep -q 'mmm_http_requests_total' || { \
		echo "cluster-smoke FAILED: router /metrics lacks routed-request series"; exit 1; }; \
	n=$$(printf '%s\n' $$ids | wc -l); \
	echo "cluster-smoke OK: $$n sets survive a node kill behind the router"

# Short-budget fuzzing of the property suites: checksummed blob round
# trips, the sim-vs-dir backend oracle, and chunker reassembly. The
# committed seed corpora under testdata/fuzz/ always run; the small
# time budget adds fresh mutated inputs on top.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzChecksumRoundTrip -fuzztime=10s ./internal/storage/blobstore
	$(GO) test -run=NONE -fuzz=FuzzBackendOracle -fuzztime=10s ./internal/storage/sim
	$(GO) test -run=NONE -fuzz=FuzzChunker -fuzztime=10s ./internal/storage/cas
	$(GO) test -run=NONE -fuzz=FuzzIndexDecode -fuzztime=10s ./internal/storage/cas
	$(GO) test -run=NONE -fuzz=FuzzShuffle -fuzztime=10s ./internal/codec
	$(GO) test -run=NONE -fuzz=FuzzTLZRoundTrip -fuzztime=10s ./internal/codec
	$(GO) test -run=NONE -fuzz=FuzzPullManifestDecode -fuzztime=10s ./internal/server

# The full gate: compile everything, vet, run the suite twice —
# once plain, once under the race detector — then the durability,
# observability, resilience, dedup, codec, pull, self-healing, and
# cluster smoke tests and the short fuzz pass.
check: build vet test race race-stress fsck-smoke metrics-smoke chaos-smoke dedup-smoke codec-smoke pull-smoke scrub-smoke cluster-smoke fuzz

bench:
	$(GO) test -bench=. -benchmem
