package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

// runArgs invokes the CLI entry point against a store under dir.
func runArgs(t *testing.T, dir string, args ...string) error {
	t.Helper()
	full := append([]string{args[0], "-dir", dir}, args[1:]...)
	return run(context.Background(), full)
}

func storeDir(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "store")
}

func TestLifecycleBaseline(t *testing.T) {
	dir := storeDir(t)
	if err := runArgs(t, dir, "init", "-approach", "baseline", "-n", "10", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "cycle", "-approach", "baseline", "-base", "bl-000001", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "recover", "-approach", "baseline", "-set", "bl-000002"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "list", "-approach", "baseline"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "inspect", "-approach", "baseline", "-set", "bl-000001"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "verify", "-approach", "baseline"); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleProvenanceDeterministicAcrossProcessBoundary(t *testing.T) {
	// Each runArgs call opens fresh stores — the same isolation as
	// separate process invocations. Provenance recovery must still be
	// exact because everything derives from persisted state.
	dir := storeDir(t)
	for _, args := range [][]string{
		{"init", "-approach", "provenance", "-n", "8", "-samples", "30"},
		{"cycle", "-approach", "provenance", "-base", "pv-000001", "-samples", "30"},
		{"cycle", "-approach", "provenance", "-base", "pv-000002", "-samples", "30"},
		{"recover", "-approach", "provenance", "-set", "pv-000003"},
		{"verify", "-approach", "provenance"},
	} {
		if err := runArgs(t, dir, args...); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestPruneCommand(t *testing.T) {
	dir := storeDir(t)
	if err := runArgs(t, dir, "init", "-approach", "update", "-n", "6", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "cycle", "-approach", "update", "-base", "up-000001", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "prune", "-approach", "update", "-keep", "up-000002"); err != nil {
		t.Fatal(err)
	}
	// Chain closure keeps both sets; recovery must still work.
	if err := runArgs(t, dir, "recover", "-approach", "update", "-set", "up-000002"); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	dir := storeDir(t)
	if err := run(context.Background(), nil); err == nil {
		t.Error("missing command accepted")
	}
	if err := runArgs(t, dir, "teleport"); err == nil {
		t.Error("unknown command accepted")
	}
	if err := runArgs(t, dir, "init", "-approach", "hologram"); err == nil {
		t.Error("unknown approach accepted")
	}
	if err := runArgs(t, dir, "cycle", "-approach", "baseline"); err == nil {
		t.Error("cycle without base accepted")
	}
	if err := runArgs(t, dir, "recover", "-approach", "baseline"); err == nil {
		t.Error("recover without set accepted")
	}
	if err := runArgs(t, dir, "recover", "-approach", "baseline", "-set", "bl-404"); err == nil {
		t.Error("recover of unknown set accepted")
	}
	if err := runArgs(t, dir, "init", "-approach", "baseline", "-arch", "resnet"); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestVerifyAgainstReportsIdentical(t *testing.T) {
	dir := storeDir(t)
	if err := runArgs(t, dir, "init", "-approach", "baseline", "-n", "5", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	// Save the same fleet again: contents identical, different set.
	if err := runArgs(t, dir, "init", "-approach", "baseline", "-n", "5", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	err := runArgs(t, dir, "recover", "-approach", "baseline",
		"-set", "bl-000001", "-verify-against", "bl-000002")
	if err != nil {
		t.Fatal(err)
	}
}

func TestFsckCommand(t *testing.T) {
	dir := storeDir(t)
	if err := runArgs(t, dir, "init", "-approach", "baseline", "-n", "5", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "fsck"); err != nil {
		t.Fatalf("fsck of healthy store: %v", err)
	}

	// Flip one byte of the saved parameter blob on disk; fsck must
	// report the store as damaged.
	path := filepath.Join(dir, "blobs", "baseline", "bl-000001", "params.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	at := len(raw) / 2
	raw[at] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "fsck"); err == nil || !strings.Contains(err.Error(), "damaged") {
		t.Fatalf("fsck of corrupted store: err = %v, want damaged", err)
	}
	// Repair must refuse to touch the damage.
	if err := runArgs(t, dir, "fsck", "-repair"); err == nil {
		t.Fatal("fsck -repair of damaged store reported success")
	}
	raw[at] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "fsck"); err != nil {
		t.Fatalf("fsck after restore: %v", err)
	}

	// Plant orphaned crash debris: plain fsck flags it and asks for
	// -repair, -repair deletes it, the store comes back clean.
	orphanDir := filepath.Join(dir, "blobs", "baseline", "bl-999999")
	if err := os.MkdirAll(orphanDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphanDir, "params.bin"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "fsck"); err == nil || !strings.Contains(err.Error(), "repair") {
		t.Fatalf("fsck with orphan: err = %v, want repair hint", err)
	}
	if err := runArgs(t, dir, "fsck", "-repair"); err != nil {
		t.Fatalf("fsck -repair: %v", err)
	}
	if err := runArgs(t, dir, "fsck"); err != nil {
		t.Fatalf("fsck after repair: %v", err)
	}
	// The committed set survived repair.
	if err := runArgs(t, dir, "recover", "-approach", "baseline", "-set", "bl-000001"); err != nil {
		t.Fatal(err)
	}
}

func TestDedupLifecycle(t *testing.T) {
	dir := storeDir(t)
	// Two identical fleets saved through the chunk store share every
	// chunk; du, prune, gc, and fsck must all agree on the result.
	for i := 0; i < 2; i++ {
		if err := runArgs(t, dir, "init", "-approach", "baseline", "-n", "4", "-samples", "30", "-dedup"); err != nil {
			t.Fatal(err)
		}
	}
	if err := runArgs(t, dir, "du"); err != nil {
		t.Fatal(err)
	}
	// Recovery needs no -dedup: the read path is always CAS-aware.
	if err := runArgs(t, dir, "recover", "-approach", "baseline",
		"-set", "bl-000001", "-verify-against", "bl-000002"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "prune", "-approach", "baseline", "-keep", "bl-000002"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "gc"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "fsck"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "recover", "-approach", "baseline", "-set", "bl-000002"); err != nil {
		t.Fatal(err)
	}
}

func TestRetriesFlag(t *testing.T) {
	dir := storeDir(t)
	if err := runArgs(t, dir, "init", "-approach", "baseline", "-n", "4", "-samples", "30", "-retries", "3"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dir, "recover", "-approach", "baseline", "-set", "bl-000001", "-retries", "3"); err != nil {
		t.Fatal(err)
	}
}

func TestBuildApproachNames(t *testing.T) {
	for _, name := range []string{"baseline", "update", "provenance", "mmlib"} {
		st, err := openTestStores(t)
		if err != nil {
			t.Fatal(err)
		}
		a, err := buildApproach(name, st, 2, false, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() == "" {
			t.Errorf("%s: empty approach name", name)
		}
		if _, err := listSets(a); err != nil {
			t.Errorf("%s: listSets failed: %v", name, err)
		}
	}
	st, _ := openTestStores(t)
	if _, err := buildApproach("nope", st, 1, false, ""); err == nil ||
		!strings.Contains(err.Error(), "unknown approach") {
		t.Error("unknown approach not rejected")
	}
}

func TestExportImportCommands(t *testing.T) {
	src := storeDir(t)
	if err := runArgs(t, src, "init", "-approach", "update", "-n", "6", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, src, "cycle", "-approach", "update", "-base", "up-000001", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	archive := filepath.Join(t.TempDir(), "chain.tar")
	if err := runArgs(t, src, "export", "-approach", "update", "-set", "up-000002", "-out", archive); err != nil {
		t.Fatal(err)
	}
	dst := storeDir(t)
	if err := runArgs(t, dst, "import", "-in", archive); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dst, "recover", "-approach", "update", "-set", "up-000002"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, dst, "verify", "-approach", "update"); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if err := runArgs(t, dst, "export", "-approach", "update"); err == nil {
		t.Error("export without -set/-out accepted")
	}
	if err := runArgs(t, dst, "import"); err == nil {
		t.Error("import without -in accepted")
	}
}

func TestExtractCommand(t *testing.T) {
	dir := storeDir(t)
	if err := runArgs(t, dir, "init", "-approach", "baseline", "-n", "5", "-samples", "30"); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "cell.mmm")
	if err := runArgs(t, dir, "extract", "-approach", "baseline",
		"-set", "bl-000001", "-model", "2", "-out", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := nn.LoadModel(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Arch.Name != "FFNN-48" || m.ParamCount() != 4993 {
		t.Fatalf("extracted model: %s with %d params", m.Arch.Name, m.ParamCount())
	}
	if err := runArgs(t, dir, "extract", "-approach", "baseline", "-set", "bl-000001"); err == nil {
		t.Error("extract without -model/-out accepted")
	}
}
