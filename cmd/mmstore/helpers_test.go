package main

import (
	"testing"

	mmm "github.com/mmm-go/mmm"
)

// openTestStores opens stores in a fresh temporary directory.
func openTestStores(t *testing.T) (mmm.Stores, error) {
	t.Helper()
	return mmm.OpenDirStores(t.TempDir())
}
