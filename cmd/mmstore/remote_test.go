package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	mmm "github.com/mmm-go/mmm"
)

func TestRemoteLifecycle(t *testing.T) {
	ts := httptest.NewServer(mmm.NewManagementServer(mmm.NewMemStores()))
	t.Cleanup(ts.Close)
	remote := func(args ...string) error {
		t.Helper()
		full := append([]string{args[0], "-server", ts.URL, "-approach", "baseline"}, args[1:]...)
		return run(context.Background(), full)
	}

	if err := remote("init", "-n", "6"); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"list"},
		{"inspect", "-set", "bl-000001"},
		{"recover", "-set", "bl-000001"},
		{"recover", "-set", "bl-000001", "-partial"},
		{"verify"},
		{"fsck"},
	} {
		if err := remote(args...); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}

	// Idempotency keys are fresh per invocation: a second init is a
	// second set, not a replay.
	if err := remote("init", "-n", "6"); err != nil {
		t.Fatal(err)
	}
	if err := remote("recover", "-set", "bl-000002", "-verify-against", "bl-000001"); err != nil {
		t.Fatal(err)
	}

	// Commands that need raw store access refuse remote mode.
	if err := remote("cycle", "-base", "bl-000001"); err == nil ||
		!strings.Contains(err.Error(), "direct store access") {
		t.Fatalf("remote cycle: err = %v, want a direct-store-access refusal", err)
	}
}

func TestRemoteWaitReadyTimesOutOnDrainingServer(t *testing.T) {
	stores := mmm.NewMemStores()
	api := mmm.NewManagementServer(stores)
	api.BeginDrain()
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	err := run(context.Background(), []string{
		"list", "-server", ts.URL, "-approach", "baseline", "-wait-ready", "300ms",
	})
	if err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("list against draining server: err = %v, want a readiness failure", err)
	}
}
