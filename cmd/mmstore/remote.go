package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"time"

	mmm "github.com/mmm-go/mmm"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/server"
)

// Remote mode: with -server, mmstore manages a running mmserve
// instance over HTTP instead of opening a store directory. The client
// waits for the server's /readyz before the first request (so a tool
// launched next to the server does not race its startup), retries
// idempotent requests, and saves under a generated Idempotency-Key so
// a connection fault mid-save cannot duplicate the set.
//
// Commands that need raw store access (cycle, export, import) or local
// training stay local-only.

// remoteSession is the per-invocation remote state.
type remoteSession struct {
	client   *server.Client
	approach string
}

// newRemoteSession builds the client and waits for readiness. With a
// pull-cache directory, recoveries go over the chunk-level pull
// protocol against the local cache; without one, every chunk of a
// pull-capable set is still fetched chunk-wise, and sets or servers
// that cannot serve chunks fall back to the multipart download.
func newRemoteSession(ctx context.Context, baseURL, approach, pullCache string, waitReady time.Duration) (*remoteSession, error) {
	c := &server.Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		Breaker: &server.Breaker{},
	}
	if pullCache != "" {
		cache, err := server.OpenPullCache(pullCache)
		if err != nil {
			return nil, err
		}
		c.Cache = cache
	}
	if err := c.WaitReady(ctx, waitReady); err != nil {
		return nil, err
	}
	return &remoteSession{client: c, approach: approach}, nil
}

// newIdempotencyKey generates a fresh random save key.
func newIdempotencyKey() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("generating idempotency key: %w", err)
	}
	return "mmstore-" + hex.EncodeToString(b[:]), nil
}

// runRemote dispatches one command against a remote server. The flag
// values mirror run's locals.
func runRemote(ctx context.Context, cmd string, f remoteFlags) error {
	switch cmd {
	case "cycle", "export", "import", "gc":
		return fmt.Errorf("%s needs direct store access; run it on the server host without -server", cmd)
	}
	s, err := newRemoteSession(ctx, f.server, f.approach, f.pullCache, f.waitReady)
	if err != nil {
		return err
	}

	switch cmd {
	case "init":
		cfg := mmm.DefaultWorkload()
		arch, err := mmm.ArchitectureByName(f.archName)
		if err != nil {
			return err
		}
		cfg.Arch = arch
		cfg.NumModels = f.n
		cfg.Seed = f.seed
		// Fresh fleets reference no datasets; a throwaway registry
		// satisfies the constructor.
		fleet, err := mmm.NewFleet(cfg, dataset.NewRegistry())
		if err != nil {
			return err
		}
		key, err := newIdempotencyKey()
		if err != nil {
			return err
		}
		res, err := s.client.SaveWithKey(ctx, s.approach, key, fleet.Set, "", nil, nil)
		if err != nil {
			return err
		}
		fmt.Printf("saved initial set %s: %d models, %.3f MB, %d store writes\n",
			res.SetID, fleet.Set.Len(), float64(res.BytesWritten)/1e6, res.WriteOps)
		return nil

	case "list":
		ids, err := s.client.List(ctx, s.approach)
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			fmt.Println("no sets saved")
			return nil
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil

	case "recover":
		if f.setID == "" {
			return fmt.Errorf("recover requires -set")
		}
		if f.partial {
			rec, report, err := s.client.RecoverPartial(ctx, s.approach, f.setID)
			if err != nil {
				return err
			}
			fmt.Printf("recovered %s (degraded mode): %s\n", f.setID, report)
			for _, fail := range report.Failures {
				fmt.Printf("  lost model %d: %s\n", fail.ModelIndex, fail.Error)
			}
			_ = rec
			return nil
		}
		set, err := s.client.Recover(ctx, s.approach, f.setID)
		if err != nil {
			return err
		}
		fmt.Printf("recovered %s: %d models of %s (%d parameters each)\n",
			f.setID, set.Len(), set.Arch.Name, set.Arch.ParamCount())
		if f.verify != "" {
			other, err := s.client.Recover(ctx, s.approach, f.verify)
			if err != nil {
				return err
			}
			if set.Equal(other) {
				fmt.Printf("%s and %s are bit-identical\n", f.setID, f.verify)
			} else {
				fmt.Printf("%s and %s differ\n", f.setID, f.verify)
			}
		}
		return nil

	case "inspect":
		if f.setID == "" {
			return fmt.Errorf("inspect requires -set")
		}
		chain, err := s.client.Info(ctx, s.approach, f.setID)
		if err != nil {
			return err
		}
		info := chain[0]
		fmt.Printf("set:          %s\n", info.SetID)
		fmt.Printf("approach:     %s\n", info.Approach)
		fmt.Printf("models:       %d\n", info.NumModels)
		fmt.Printf("architecture: %s (%d parameters)\n", info.ArchName, info.ParamCount)
		fmt.Printf("chain depth:  %d\n", info.Depth)
		fmt.Println("lineage (newest first):")
		for _, e := range chain {
			fmt.Printf("  %s  kind=%-7s depth=%d\n", e.SetID, e.Kind, e.Depth)
		}
		return nil

	case "verify":
		issues, err := s.client.Verify(ctx, s.approach)
		if err != nil {
			return err
		}
		if len(issues) == 0 {
			fmt.Println("store consistent: no issues found")
			return nil
		}
		for _, i := range issues {
			fmt.Println(i)
		}
		return fmt.Errorf("%d issue(s) found", len(issues))

	case "fsck":
		report, err := s.client.Fsck(ctx, f.repair)
		if err != nil {
			return err
		}
		fmt.Printf("checked %d set(s), verified %.3f MB of blob data\n",
			report.Sets, float64(report.BytesVerified)/1e6)
		for _, issue := range report.Issues {
			fmt.Println(issue)
		}
		if n := report.DamagedCount(); n > 0 {
			return fmt.Errorf("store damaged: %d issue(s) concern committed data", n)
		}
		if len(report.Issues) > 0 && !f.repair {
			return fmt.Errorf("%d orphan(s) found (rerun with -repair to delete)", len(report.Issues))
		}
		if report.Clean() {
			fmt.Println("store clean")
		}
		return nil

	case "du":
		report, err := s.client.Du(ctx)
		if err != nil {
			return err
		}
		printDu(report)
		return nil

	case "prune":
		var keepIDs []string
		if f.keep != "" {
			keepIDs = strings.Split(f.keep, ",")
		}
		report, err := s.client.Prune(ctx, s.approach, keepIDs)
		if err != nil {
			return err
		}
		fmt.Printf("kept %d set(s), deleted %d, freed %.3f MB\n",
			len(report.Kept), len(report.Deleted), float64(report.FreedBytes)/1e6)
		for _, id := range report.Deleted {
			fmt.Println("deleted", id)
		}
		return nil

	case "extract":
		if f.setID == "" || f.out == "" || f.modelIdx < 0 {
			return fmt.Errorf("extract requires -set, -model, and -out")
		}
		rec, err := s.client.RecoverModels(ctx, s.approach, f.setID, []int{f.modelIdx})
		if err != nil {
			return err
		}
		out, err := os.Create(f.out)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := nn.SaveModel(rec.Models[f.modelIdx], out); err != nil {
			return err
		}
		fmt.Printf("extracted model %d of %s to %s (%s, %d parameters)\n",
			f.modelIdx, f.setID, f.out, rec.Arch.Name, rec.Arch.ParamCount())
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// remoteFlags carries the parsed flag values runRemote needs.
type remoteFlags struct {
	server    string
	approach  string
	setID     string
	verify    string
	keep      string
	out       string
	archName  string
	n         int
	seed      uint64
	modelIdx  int
	repair    bool
	partial   bool
	waitReady time.Duration
	pullCache string
}
