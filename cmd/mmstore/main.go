// Command mmstore manages model sets in on-disk stores: it runs the
// paper's deployment lifecycle end to end from the command line.
//
// Usage:
//
//	mmstore -dir ./store init    -approach baseline -n 100 [-arch FFNN-48] [-seed 2023]
//	mmstore -dir ./store cycle   -approach baseline -base <set-id>
//	mmstore -dir ./store recover -approach baseline -set  <set-id> [-verify-against <set-id>]
//	mmstore -dir ./store list    -approach baseline
//	mmstore -dir ./store inspect -approach baseline -set <set-id>
//	mmstore -dir ./store verify  -approach baseline
//	mmstore -dir ./store fsck    [-repair]
//	mmstore -dir ./store scrub   [-repair-from URL] [-full] [-scrub-rate N]
//	mmstore -dir ./store du
//	mmstore -dir ./store gc
//	mmstore -dir ./store prune   -approach baseline -keep <id>[,<id>...]
//	mmstore -dir ./store export  -approach update -set <set-id> -out chain.tar
//	mmstore -dir ./store import  -in chain.tar
//	mmstore -dir ./store extract -approach baseline -set <set-id> -model 42 -out cell42.mmm
//
// init creates a fleet of freshly initialized models and saves it (use
// case U1). cycle recovers a base set, runs one deterministic update
// cycle on it (5% full + 5% partial retraining by default), and saves
// the result (use case U3). recover loads a set; with -verify-against
// it recovers a second set and reports whether they are bit-identical.
// fsck checks the whole store across all approaches — blob checksums,
// set completeness, orphaned crash debris — and with -repair deletes
// the orphans. -retries N retries transient store I/O errors.
//
// scrub runs one full verification pass over chunks, recipes,
// refcounts, and raw blobs: corrupt bodies are moved to the quarantine
// namespace (reads fail fast, the damaged bytes are preserved) and,
// with -repair-from URL naming a healthy mmserve peer, re-fetched by
// digest over the pull protocol and restored in place. -full restarts
// from the beginning of the keyspace instead of resuming the persisted
// cursor; -scrub-rate caps read throughput in bytes/sec.
//
// -dedup routes saves through the content-addressed chunk store:
// identical parameter chunks are stored once across sets and
// approaches. du reports per-set logical versus physical bytes and the
// store-wide dedup ratio; gc deletes unreferenced chunks left behind
// by crashes.
//
// -codec ID compresses saved blobs with the named codec (none, zlib,
// or tlz): Update diff blobs directly, and every blob's chunk bodies
// when combined with -dedup. Codec IDs are persisted with the data and
// every encoded artifact is self-describing, so any mmstore reads any
// store regardless of the -codec it was written with; du and inspect
// show each set's codec.
//
// With -server URL, commands run against a remote mmserve instead of a
// local directory: the client waits for /readyz (bounded by
// -wait-ready), retries idempotent requests with backoff, and saves
// under a generated Idempotency-Key so retries cannot duplicate sets.
// recover additionally accepts -partial for degraded recovery.
// cycle, export, and import need direct store access and stay
// local-only.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	mmm "github.com/mmm-go/mmm"
	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/workload"
)

func main() {
	// Ctrl-C cancels the operation in flight; save rollback guarantees
	// the store is left without a half-written set.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "mmstore: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("mmstore", flag.ContinueOnError)
	var (
		dir      = fs.String("dir", "./mmstore-data", "store directory")
		approach = fs.String("approach", "baseline", "baseline, update, provenance, or mmlib")
		n        = fs.Int("n", 100, "fleet size for init")
		archName = fs.String("arch", "FFNN-48", "architecture for init")
		seed     = fs.Uint64("seed", 2023, "fleet seed")
		base     = fs.String("base", "", "base set ID for cycle")
		setID    = fs.String("set", "", "set ID for recover/inspect")
		verify   = fs.String("verify-against", "", "second set ID to compare with after recover")
		rate     = fs.Float64("rate", 0.10, "total update rate per cycle")
		samples  = fs.Int("samples", 100, "training samples per update dataset")
		workers  = fs.Int("workers", 1, "save/recover concurrency (1 = serial)")
		retries  = fs.Int("retries", 1, "total tries per store operation (>1 retries transient I/O errors)")
		repair   = fs.Bool("repair", false, "fsck: delete orphaned crash debris")
		dedup    = fs.Bool("dedup", false, "route saves through the content-addressed deduplicating chunk store")
		codecID  = fs.String("codec", "", "compression codec for saves: none, zlib, or tlz (default none)")
		verbose  = fs.Bool("v", false, "print a metrics snapshot to stderr after the command")
	)
	keep := fs.String("keep", "", "comma-separated set IDs to keep for prune")
	out := fs.String("out", "", "output path for export/extract")
	in := fs.String("in", "", "input archive path for import")
	modelIdx := fs.Int("model", -1, "model index for extract")
	serverURL := fs.String("server", "", "manage a remote mmserve at this URL instead of a local store directory")
	waitReady := fs.Duration("wait-ready", 10*time.Second, "with -server: how long to wait for the server's /readyz before the first request")
	partial := fs.Bool("partial", false, "with -server: recover in degraded mode, skipping damaged models and reporting them")
	pullCache := fs.String("pull-cache", "", "with -server: directory for the local chunk cache; recoveries diff against it and fetch only missing chunks")
	repairFrom := fs.String("repair-from", "", "scrub: URL of a healthy mmserve peer to re-fetch quarantined or missing chunks from")
	full := fs.Bool("full", false, "scrub: restart from the beginning of the keyspace instead of resuming the cursor")
	scrubRate := fs.Int64("scrub-rate", 0, "scrub: cap verification read throughput in bytes/sec (0 = unlimited)")
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing command: init, cycle, recover, list, inspect, verify, fsck, scrub, du, gc, or prune")
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *serverURL != "" {
		return runRemote(ctx, cmd, remoteFlags{
			server: *serverURL, approach: *approach, setID: *setID,
			verify: *verify, keep: *keep, out: *out, archName: *archName,
			n: *n, seed: *seed, modelIdx: *modelIdx, repair: *repair,
			partial: *partial, waitReady: *waitReady, pullCache: *pullCache,
		})
	}
	if *verbose {
		// Deferred so the snapshot also covers failed commands — the
		// error counters are exactly what -v is for then.
		defer func() {
			fmt.Fprintf(os.Stderr, "\nmetrics:\n%s", mmm.DefaultMetrics.Summary())
		}()
	}

	stores, err := mmm.OpenDirStoresWith(*dir, mmm.StoreOptions{RetryAttempts: *retries})
	if err != nil {
		return err
	}
	appr, err := buildApproach(*approach, stores, *workers, *dedup, *codecID)
	if err != nil {
		return err
	}

	cfg := mmm.DefaultWorkload()
	arch, err := mmm.ArchitectureByName(*archName)
	if err != nil {
		return err
	}
	cfg.Arch = arch
	cfg.NumModels = *n
	cfg.Seed = *seed
	cfg.FullUpdateRate = *rate / 2
	cfg.PartialUpdateRate = *rate / 2
	cfg.SamplesPerDataset = *samples

	switch cmd {
	case "init":
		fleet, err := mmm.NewFleet(cfg, stores.Datasets)
		if err != nil {
			return err
		}
		res, err := appr.SaveContext(ctx, mmm.SaveRequest{Set: fleet.Set})
		if err != nil {
			return err
		}
		fmt.Printf("saved initial set %s: %d models, %.3f MB, %d store writes\n",
			res.SetID, fleet.Set.Len(), float64(res.BytesWritten)/1e6, res.WriteOps)
		return nil

	case "cycle":
		if *base == "" {
			return fmt.Errorf("cycle requires -base")
		}
		set, err := appr.RecoverContext(ctx, *base)
		if err != nil {
			return err
		}
		cfg.NumModels = set.Len()
		cfg.Arch = set.Arch
		depth, err := chainDepth(appr, *base)
		if err != nil {
			return err
		}
		fleet, err := workload.Resume(cfg, stores.Datasets, set, depth)
		if err != nil {
			return err
		}
		updates, err := fleet.RunCycle()
		if err != nil {
			return err
		}
		res, err := appr.SaveContext(ctx, mmm.SaveRequest{
			Set: fleet.Set, Base: *base, Updates: updates, Train: fleet.TrainInfo(),
		})
		if err != nil {
			return err
		}
		fmt.Printf("saved derived set %s: %d models updated, %.3f MB, %d store writes\n",
			res.SetID, len(updates), float64(res.BytesWritten)/1e6, res.WriteOps)
		return nil

	case "recover":
		if *setID == "" {
			return fmt.Errorf("recover requires -set")
		}
		set, err := appr.RecoverContext(ctx, *setID)
		if err != nil {
			return err
		}
		fmt.Printf("recovered %s: %d models of %s (%d parameters each)\n",
			*setID, set.Len(), set.Arch.Name, set.Arch.ParamCount())
		if *verify != "" {
			other, err := appr.RecoverContext(ctx, *verify)
			if err != nil {
				return err
			}
			if set.Equal(other) {
				fmt.Printf("%s and %s are bit-identical\n", *setID, *verify)
			} else {
				fmt.Printf("%s and %s differ\n", *setID, *verify)
			}
		}
		return nil

	case "list":
		ids, err := listSets(appr)
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			fmt.Println("no sets saved")
			return nil
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil

	case "inspect":
		if *setID == "" {
			return fmt.Errorf("inspect requires -set")
		}
		set, err := appr.RecoverContext(ctx, *setID)
		if err != nil {
			return err
		}
		depth, err := chainDepth(appr, *setID)
		if err != nil {
			return err
		}
		fmt.Printf("set:          %s\n", *setID)
		fmt.Printf("approach:     %s\n", appr.Name())
		fmt.Printf("models:       %d\n", set.Len())
		fmt.Printf("architecture: %s (%d parameters, %d bytes/model)\n",
			set.Arch.Name, set.Arch.ParamCount(), set.Arch.ParamBytes())
		fmt.Printf("chain depth:  %d\n", depth)
		if l, ok := appr.(core.Lineager); ok {
			chain, err := l.Lineage(*setID)
			if err != nil {
				return err
			}
			if len(chain) > 0 {
				codecName := chain[0].Codec
				if codecName == "" {
					codecName = "none"
				}
				fmt.Printf("codec:        %s\n", codecName)
			}
			fmt.Println("lineage (newest first):")
			for _, info := range chain {
				fmt.Printf("  %s  kind=%-7s depth=%d\n", info.SetID, info.Kind, info.Depth)
			}
		}
		return nil

	case "verify":
		v, ok := appr.(core.Verifier)
		if !ok {
			return fmt.Errorf("approach %s does not support verification", appr.Name())
		}
		issues, err := v.VerifyStore()
		if err != nil {
			return err
		}
		if len(issues) == 0 {
			fmt.Println("store consistent: no issues found")
			return nil
		}
		for _, i := range issues {
			fmt.Println(i)
		}
		return fmt.Errorf("%d issue(s) found", len(issues))

	case "fsck":
		report, err := mmm.Fsck(stores, mmm.FsckOptions{Repair: *repair})
		if report == nil {
			return err
		}
		fmt.Printf("checked %d set(s), verified %.3f MB of blob data\n",
			report.Sets, float64(report.BytesVerified)/1e6)
		for _, issue := range report.Issues {
			fmt.Println(issue)
		}
		if err != nil {
			return err
		}
		if n := report.DamagedCount(); n > 0 {
			return fmt.Errorf("store damaged: %d issue(s) concern committed data", n)
		}
		if len(report.Issues) > 0 && !*repair {
			return fmt.Errorf("%d orphan(s) found (rerun with -repair to delete)", len(report.Issues))
		}
		if report.Clean() {
			fmt.Println("store clean")
		}
		return nil

	case "scrub":
		cfg := mmm.ScrubConfig{RateBytesPerSec: *scrubRate}
		if *repairFrom != "" {
			cfg.Fetcher = &mmm.ManagementClient{BaseURL: *repairFrom}
		}
		s := mmm.NewScrubber(stores.Blobs, stores.Docs, cfg)
		if *full {
			s.ResetCursor()
		}
		report, err := s.RunPass(ctx)
		if err != nil {
			return err
		}
		fmt.Println(report)
		for _, f := range report.Findings {
			status := "found"
			switch {
			case f.Repaired:
				status = "repaired"
			case f.RepairError != "":
				status = "repair failed: " + f.RepairError
			case f.Quarantined:
				status = "quarantined"
			}
			fmt.Printf("  %s: %s (%s)\n", f.Key, f.Problem, status)
		}
		if n := report.Errors(); n > 0 {
			return fmt.Errorf("%d unhealed finding(s)", n)
		}
		return nil

	case "du":
		report, err := mmm.Du(stores)
		if err != nil {
			return err
		}
		printDu(report)
		return nil

	case "gc":
		report, err := mmm.GCStore(stores, mmm.DefaultMetrics)
		if err != nil {
			return err
		}
		fmt.Printf("deleted %d chunk(s) (%.3f MB) and %d stale refcount(s), kept %d\n",
			report.ChunksDeleted, float64(report.BytesFreed)/1e6,
			report.RefsDeleted, report.ChunksKept)
		return nil

	case "prune":
		p, ok := appr.(core.Pruner)
		if !ok {
			return fmt.Errorf("approach %s does not support pruning", appr.Name())
		}
		var keepIDs []string
		if *keep != "" {
			keepIDs = strings.Split(*keep, ",")
		}
		report, err := p.Prune(keepIDs)
		if err != nil {
			return err
		}
		fmt.Printf("kept %d set(s), deleted %d, freed %.3f MB\n",
			len(report.Kept), len(report.Deleted), float64(report.FreedBytes)/1e6)
		for _, id := range report.Deleted {
			fmt.Println("deleted", id)
		}
		return nil

	case "export":
		if *setID == "" || *out == "" {
			return fmt.Errorf("export requires -set and -out")
		}
		e, ok := appr.(core.Exporter)
		if !ok {
			return fmt.Errorf("approach %s does not support export", appr.Name())
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := e.Export(*setID, f); err != nil {
			return err
		}
		info, err := f.Stat()
		if err != nil {
			return err
		}
		fmt.Printf("exported %s and its chain to %s (%.3f MB)\n",
			*setID, *out, float64(info.Size())/1e6)
		return nil

	case "extract":
		if *setID == "" || *out == "" || *modelIdx < 0 {
			return fmt.Errorf("extract requires -set, -model, and -out")
		}
		pr, ok := appr.(core.PartialRecoverer)
		if !ok {
			return fmt.Errorf("approach %s does not support selective recovery", appr.Name())
		}
		rec, err := pr.RecoverModelsContext(ctx, *setID, []int{*modelIdx})
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nn.SaveModel(rec.Models[*modelIdx], f); err != nil {
			return err
		}
		fmt.Printf("extracted model %d of %s to %s (%s, %d parameters)\n",
			*modelIdx, *setID, *out, rec.Arch.Name, rec.Arch.ParamCount())
		return nil

	case "import":
		if *in == "" {
			return fmt.Errorf("import requires -in")
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := core.ImportArchive(stores, f); err != nil {
			return err
		}
		fmt.Printf("imported archive %s\n", *in)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// buildApproach constructs the requested management approach.
func buildApproach(name string, stores mmm.Stores, workers int, dedup bool, codecID string) (mmm.Approach, error) {
	opts := []mmm.Option{mmm.WithConcurrency(workers)}
	if dedup {
		opts = append(opts, mmm.WithDedup())
	}
	if codecID != "" {
		opts = append(opts, mmm.WithCodec(codecID))
	}
	switch name {
	case "baseline":
		return mmm.NewBaseline(stores, opts...), nil
	case "update":
		return mmm.NewUpdate(stores, opts...), nil
	case "provenance":
		return mmm.NewProvenance(stores, opts...), nil
	case "mmlib":
		return mmm.NewMMlibBase(stores, opts...), nil
	}
	return nil, fmt.Errorf("unknown approach %q (want baseline, update, provenance, or mmlib)", name)
}

// printDu renders a storage-accounting report, local or remote.
func printDu(report *mmm.DuReport) {
	if len(report.Sets) == 0 {
		fmt.Println("no sets saved")
	}
	for _, s := range report.Sets {
		codecName := s.Codec
		if codecName == "" {
			codecName = "none"
		}
		fmt.Printf("%-11s %-28s codec %-5s logical %10.3f MB  physical %10.3f MB\n",
			s.Approach, s.SetID, codecName,
			float64(s.LogicalBytes)/1e6, float64(s.PhysicalBytes)/1e6)
	}
	fmt.Printf("store-wide: logical %.3f MB, physical %.3f MB (raw %.3f + chunks %.3f + recipes %.3f), %d chunk(s)\n",
		float64(report.LogicalBytes)/1e6, float64(report.PhysicalBytes)/1e6,
		float64(report.RawBytes)/1e6, float64(report.ChunkBytes)/1e6,
		float64(report.RecipeBytes)/1e6, report.Chunks)
	if report.PhysicalBytes > 0 {
		fmt.Printf("dedup ratio: %.2fx\n", float64(report.LogicalBytes)/float64(report.PhysicalBytes))
	}
	if report.QuarantinedCount > 0 {
		fmt.Printf("quarantine: %d corrupt bodies (%.3f MB) awaiting repair or fsck cleanup\n",
			report.QuarantinedCount, float64(report.QuarantinedBytes)/1e6)
	}
}

// listSets returns the saved set IDs of an approach.
func listSets(a mmm.Approach) ([]string, error) {
	switch v := a.(type) {
	case *core.Baseline:
		return v.SetIDs()
	case *core.Update:
		return v.SetIDs()
	case *core.Provenance:
		return v.SetIDs()
	case *core.MMlibBase:
		return v.SetIDs()
	}
	return nil, fmt.Errorf("approach %s does not list sets", a.Name())
}

// chainDepth returns the recovery-chain depth of a set (0 for
// approaches without chains).
func chainDepth(a mmm.Approach, setID string) (int, error) {
	switch v := a.(type) {
	case *core.Update:
		return v.ChainDepth(setID)
	case *core.Provenance:
		return v.ChainDepth(setID)
	}
	return 0, nil
}
