package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mmm "github.com/mmm-go/mmm"
	"github.com/mmm-go/mmm/internal/server"
)

// rotOneChunk flips a byte in the middle of one stored CAS chunk file
// under dir, behind every store layer's back, and returns its path.
func rotOneChunk(t *testing.T, dir string) string {
	t.Helper()
	chunkDir := filepath.Join(dir, "blobs", "cas", "chunks")
	var victim string
	err := filepath.Walk(chunkDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if victim == "" && !info.IsDir() && info.Size() > 0 {
			victim = path
		}
		return nil
	})
	if err != nil || victim == "" {
		t.Fatalf("no chunk file found under %s: %v", chunkDir, err)
	}
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return victim
}

// TestScrubCommandHealsFromPeer is the CLI round trip of the
// self-healing story: plant rot in a dedup store, scrub without a peer
// (detect + quarantine, command fails), then scrub -repair-from a
// healthy mmserve holding identical data (heal, command succeeds, fsck
// clean, recovery exact).
func TestScrubCommandHealsFromPeer(t *testing.T) {
	dir, peerDir := storeDir(t), filepath.Join(t.TempDir(), "peer")
	// Same seed + arch → deterministic init → byte-identical chunks on
	// both sides, exactly like replicas that saved the same fleet.
	initArgs := []string{"init", "-approach", "baseline", "-dedup", "-n", "6", "-samples", "30"}
	if err := runArgs(t, dir, initArgs...); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(t, peerDir, initArgs...); err != nil {
		t.Fatal(err)
	}

	// Clean store: scrub passes and reports nothing.
	if err := runArgs(t, dir, "scrub"); err != nil {
		t.Fatalf("scrub of clean store: %v", err)
	}

	rotOneChunk(t, dir)
	err := runArgs(t, dir, "scrub", "-full")
	if err == nil || !strings.Contains(err.Error(), "unhealed") {
		t.Fatalf("scrub over rot without a peer = %v, want unhealed findings", err)
	}
	// The rot was quarantined: recovery now fails fast rather than
	// returning wrong bytes.
	if err := runArgs(t, dir, "recover", "-approach", "baseline", "-dedup", "-set", "bl-000001"); err == nil {
		t.Fatal("recover served a set with a quarantined chunk")
	}

	peerStores, err := mmm.OpenDirStores(peerDir)
	if err != nil {
		t.Fatal(err)
	}
	peer := httptest.NewServer(server.New(peerStores, mmm.WithDedup()))
	defer peer.Close()
	if err := runArgs(t, dir, "scrub", "-full", "-repair-from", peer.URL); err != nil {
		t.Fatalf("scrub -repair-from: %v", err)
	}

	if err := runArgs(t, dir, "fsck"); err != nil {
		t.Fatalf("fsck after heal: %v", err)
	}
	if err := runArgs(t, dir, "recover", "-approach", "baseline", "-dedup",
		"-set", "bl-000001", "-verify-against", "bl-000001"); err != nil {
		t.Fatalf("recover after heal: %v", err)
	}
}
