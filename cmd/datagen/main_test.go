package main

import (
	"path/filepath"
	"testing"

	"github.com/mmm-go/mmm/internal/dataset"
)

func TestGenerateAndList(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "registry")
	if err := run(dir, "battery", 3, 2, 50, 0.002, 1.0, 0.02, 7, false, ""); err != nil {
		t.Fatal(err)
	}
	reg, err := dataset.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 6 { // 3 cells × 2 cycles
		t.Fatalf("registry has %d datasets, want 6", reg.Len())
	}
	if err := run(dir, "battery", 0, 0, 0, 0, 0, 0, 0, true, ""); err != nil {
		t.Fatalf("list failed: %v", err)
	}
}

func TestShow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "registry")
	if err := run(dir, "battery", 1, 1, 40, 0.002, 1.0, 0.02, 7, false, ""); err != nil {
		t.Fatal(err)
	}
	reg, err := dataset.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := reg.IDs()[0]
	if err := run(dir, "battery", 0, 0, 0, 0, 0, 0, 0, false, id); err != nil {
		t.Fatalf("show failed: %v", err)
	}
	if err := run(dir, "battery", 0, 0, 0, 0, 0, 0, 0, false, "ds-nope"); err == nil {
		t.Error("show of unknown dataset accepted")
	}
}

func TestGenerateCIFAR(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "registry")
	if err := run(dir, "cifar", 2, 1, 10, 0, 0, 0, 7, false, ""); err != nil {
		t.Fatal(err)
	}
	reg, err := dataset.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("registry has %d datasets, want 2", reg.Len())
	}
	d, err := reg.Materialize(reg.IDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Fatalf("dataset has %d samples, want 10", d.Len())
	}
}

func TestGenerateRejectsBadKind(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "registry")
	if err := run(dir, "audio", 1, 1, 10, 0, 1, 0, 7, false, ""); err == nil {
		t.Error("unknown kind accepted")
	}
}
