// Command datagen generates battery (or synthetic CIFAR) training
// datasets into a persistent dataset registry — the external data store
// the Provenance approach references into.
//
// Usage:
//
//	datagen -dir ./store/datasets -kind battery -cells 10 -cycles 3 -samples 1000
//	datagen -dir ./store/datasets -list
//	datagen -dir ./store/datasets -show <dataset-id>
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/obs"
)

func main() {
	var (
		dir     = flag.String("dir", "./mmstore-data/datasets", "registry directory")
		kind    = flag.String("kind", "battery", "dataset kind: battery or cifar")
		cells   = flag.Int("cells", 10, "number of cells (models) to generate data for")
		cycles  = flag.Int("cycles", 1, "number of update cycles to generate data for")
		samples = flag.Int("samples", 1000, "samples per dataset")
		noise   = flag.Float64("noise", 0.002, "measurement noise standard deviation")
		soh     = flag.Float64("soh", 1.0, "initial state of health")
		sohDec  = flag.Float64("soh-dec", 0.02, "state-of-health decrement per cycle")
		seed    = flag.Uint64("seed", 2023, "root seed")
		list    = flag.Bool("list", false, "list registered datasets and exit")
		show    = flag.String("show", "", "print a dataset's spec and summary stats")
		verbose = flag.Bool("v", false, "print a metrics snapshot to stderr when done")
	)
	flag.Parse()

	if *verbose {
		defer fmt.Fprintf(os.Stderr, "\nmetrics:\n%s", obs.Default.Summary())
	}
	if err := run(*dir, *kind, *cells, *cycles, *samples, *noise, *soh, *sohDec, *seed, *list, *show); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

// Dataset-generation metric families.
const (
	metricDatasets       = "mmm_datasets_generated_total"
	metricDatasetSeconds = "mmm_dataset_generate_seconds"
)

func run(dir, kind string, cells, cycles, samples int, noise, soh, sohDec float64, seed uint64, list bool, show string) error {
	reg, err := dataset.OpenRegistry(dir)
	if err != nil {
		return err
	}

	if list {
		for _, id := range reg.IDs() {
			spec, err := reg.Spec(id)
			if err != nil {
				return err
			}
			fmt.Printf("%s  kind=%s cell=%d cycle=%d samples=%d\n",
				id, spec.Kind, spec.CellID, spec.Cycle, spec.Samples)
		}
		return nil
	}

	if show != "" {
		spec, err := reg.Spec(show)
		if err != nil {
			return err
		}
		d, err := reg.Materialize(show)
		if err != nil {
			return err
		}
		fmt.Printf("spec: %+v\n", spec)
		fmt.Printf("samples: %d\n", d.Len())
		x, y := d.Sample(0)
		fmt.Printf("feature shape: %v, target shape: %v\n", x.Shape, y.Shape)
		if len(d.Stats.XMean) > 0 {
			fmt.Printf("normalization: x_mean=%v x_std=%v\n", d.Stats.XMean, d.Stats.XStd)
		}
		return nil
	}

	for cycle := 0; cycle < cycles; cycle++ {
		cycleSoH := soh - sohDec*float64(cycle)
		for cell := 0; cell < cells; cell++ {
			spec := dataset.Spec{
				Kind: dataset.Kind(kind), CellID: cell, Cycle: cycle,
				SoH: cycleSoH, Samples: samples, NoiseStd: noise, Seed: seed,
			}
			if spec.Kind == dataset.KindCIFAR {
				spec.SoH = 0
				spec.NoiseStd = 0
			}
			start := time.Now()
			id, err := reg.Put(spec)
			if err != nil {
				return fmt.Errorf("cell %d cycle %d: %w", cell, cycle, err)
			}
			obs.Default.Describe(metricDatasets, "Datasets generated and registered, by kind.")
			obs.Default.Counter(metricDatasets, obs.L("kind", kind)).Inc()
			obs.Default.Describe(metricDatasetSeconds, "Dataset generation and registration latency in seconds.")
			obs.Default.Histogram(metricDatasetSeconds, obs.TimeBuckets).Observe(time.Since(start).Seconds())
			fmt.Printf("registered %s (cell %d, cycle %d, SoH %.2f)\n", id, cell, cycle, cycleSoH)
		}
	}
	return nil
}
