// Command mmserve runs the multi-model management service over HTTP:
// a central manager that fleets push model sets to and analysts pull
// selected models from (the deployment picture of the paper's
// Figure 1).
//
// Usage:
//
//	mmserve -dir ./store -addr :8080
//
// Endpoints (see internal/server for the wire format):
//
//	GET  /healthz                                liveness
//	GET  /readyz                                 readiness (503 while draining)
//	GET  /api/approaches
//	GET  /api/{approach}/sets
//	POST /api/{approach}/sets                    multipart: manifest + params
//	GET  /api/{approach}/sets/{id}               lineage
//	GET  /api/{approach}/sets/{id}/params        full recovery
//	GET  /api/{approach}/sets/{id}/params?indices=1,5   selective recovery
//	GET  /api/{approach}/sets/{id}/params?partial=1     degraded recovery
//	GET  /api/cas/recipe/{approach}/{id}         pull protocol: chunk digest list
//	GET  /api/cas/chunk/{hash}?s={size}          pull protocol: one chunk (Range/If-Range resumable)
//	POST /api/{approach}/verify
//	POST /api/{approach}/prune                   {"keep": ["..."]}
//	POST /api/datasets                           register a dataset spec
//	GET  /api/datasets
//	GET  /api/version                            build + storage-policy stamp
//	POST /api/cluster/sync                       pull one set from a peer ({"approach","set_id","from"})
//	GET  /metrics                                Prometheus text format
//
// -dedup deduplicates saved blobs through the content-addressed chunk
// store; -codec compresses them with the named codec (none, zlib, or
// tlz). Both apply to every approach the server constructs. Save
// manifests may assert a codec; a mismatch with the server's -codec is
// rejected with 422 before anything is written.
//
// -cache-bytes bounds the in-memory serving-tier chunk cache (default
// 256 MiB): repeated recoveries of warm sets are answered from decoded
// chunks in memory instead of store reads plus decompression. Set 0 to
// disable; recovered bytes are identical either way.
//
// -durable-sync (on by default) fsyncs blob and document writes plus
// their parent directories at commit boundaries, upgrading the store's
// crash safety (atomic temp+rename) to power-failure safety. Disable
// only for throwaway stores.
//
// -scrub-interval D enables the self-healing background scrubber: it
// incrementally verifies chunk digests, recipes, refcounts, and blob
// checksums (throttled by -scrub-rate), moves corrupt bodies to the
// quarantine namespace so reads fail fast instead of serving rot, and
// — with -repair-from URL naming a healthy peer — re-fetches damaged
// chunks by digest over the pull protocol and restores them. Progress
// is exported as mmm_scrub_* metrics and the cursor persists across
// restarts.
//
// On SIGINT/SIGTERM the server drains gracefully: /readyz flips to
// 503, new API requests are rejected with Retry-After, and in-flight
// requests get -drain-timeout to finish before being canceled (a
// canceled save rolls back its partial writes).
//
// With -debug-addr, net/http/pprof profiling handlers are served on a
// second, separate listener (keep it loopback-only; profiles expose
// internals that the data API should not).
//
// With -chaos-seed, the API listener injects deterministic connection
// faults (resets, truncations, latency) — a fault drill against the
// real binary, not for production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	mmm "github.com/mmm-go/mmm"
	"github.com/mmm-go/mmm/internal/netchaos"
	"github.com/mmm-go/mmm/internal/server"
)

func main() {
	var (
		dir        = flag.String("dir", "./mmstore-data", "store directory")
		addr       = flag.String("addr", ":8080", "listen address")
		dedup      = flag.Bool("dedup", false, "route saves through the content-addressed deduplicating chunk store")
		codecID    = flag.String("codec", "", "compression codec for saves: none, zlib, or tlz (default none); clients asserting a different codec in their manifest are rejected with 422")
		cacheBytes = flag.Int64("cache-bytes", 256<<20,
			"in-memory serving-tier chunk cache budget in bytes; repeated recoveries of warm sets skip store reads and decompression (0 = disabled)")
		debugAddr = flag.String("debug-addr", "", "optional address for net/http/pprof (e.g. localhost:6060); disabled when empty")

		drainTimeout = flag.Duration("drain-timeout", server.DefaultDrainTimeout,
			"how long in-flight requests get to finish after SIGINT/SIGTERM before being canceled")
		readTimeout = flag.Duration("read-timeout", 0,
			"max duration for reading an entire request, body included (0 = no limit)")
		writeTimeout = flag.Duration("write-timeout", 0,
			"max duration for writing a response (0 = no limit)")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute,
			"max keep-alive idle time per connection (0 = no limit)")
		requestTimeout = flag.Duration("request-timeout", 0,
			"per-request handling deadline applied via context (0 = no deadline)")
		maxBodyBytes = flag.Int64("max-body-bytes", 0,
			"request body cap in bytes; oversized bodies get 413 (0 = handler-level limits only)")

		chaosSeed = flag.Uint64("chaos-seed", 0,
			"inject deterministic connection faults on the API listener, seeded here (0 = disabled)")
		chaosMaxFaults = flag.Int("chaos-max-faults", 0,
			"cap on injected faults when -chaos-seed is set (0 = unlimited)")

		durableSync = flag.Bool("durable-sync", true,
			"fsync blob and document writes (and their directories) at commit boundaries so saved sets survive power loss, not just crashes")
		scrubInterval = flag.Duration("scrub-interval", 0,
			"idle time between background integrity-scrub passes; corrupt bodies are quarantined so reads fail fast instead of returning rot (0 = scrubbing disabled)")
		scrubRate = flag.Int64("scrub-rate", 8<<20,
			"background scrub read-throughput cap in bytes/sec so verification never starves serving (0 = unlimited)")
		repairFrom = flag.String("repair-from", "",
			"URL of a healthy mmserve peer; the background scrubber re-fetches quarantined or missing chunks from it by digest and restores them")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stores, err := mmm.OpenDirStoresWith(*dir, mmm.StoreOptions{DurableSync: *durableSync})
	if err != nil {
		log.Fatalf("mmserve: %v", err)
	}
	api := server.NewWithConfig(stores, nil, server.Config{
		RequestTimeout: *requestTimeout,
		MaxBodyBytes:   *maxBodyBytes,
		Codec:          *codecID,
		CacheBytes:     *cacheBytes,
		Dedup:          *dedup,
	})

	if *debugAddr != "" {
		go serveDebug(ctx, *debugAddr, *readTimeout, *writeTimeout, *idleTimeout)
	}

	if *scrubInterval > 0 {
		cfg := mmm.ScrubConfig{
			RateBytesPerSec: *scrubRate,
			Interval:        *scrubInterval,
			OnPass: func(r mmm.ScrubReport) {
				if len(r.Findings) > 0 || r.Quarantined > 0 || r.Repaired > 0 {
					log.Printf("scrub: %s", r)
				}
			},
		}
		if *repairFrom != "" {
			cfg.Fetcher = &mmm.ManagementClient{BaseURL: *repairFrom}
		}
		scrubber := mmm.NewScrubber(stores.Blobs, stores.Docs, cfg)
		go scrubber.Run(ctx)
		fmt.Printf("mmserve: background scrub every %v", *scrubInterval)
		if *repairFrom != "" {
			fmt.Printf(", repairing from %s", *repairFrom)
		}
		fmt.Println()
	}

	hs := &http.Server{
		Handler:           logging(api),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mmserve: %v", err)
	}
	if *chaosSeed != 0 {
		fmt.Printf("mmserve: CHAOS listener enabled (seed %d)\n", *chaosSeed)
		ln = netchaos.WrapListener(ln, netchaos.Config{
			Seed: *chaosSeed, Reset: 0.05, Truncate: 0.05,
			LatencyP: 0.10, Latency: 50 * time.Millisecond,
			MaxFaults: *chaosMaxFaults,
		})
	}

	fmt.Printf("mmserve: serving %s on %s\n", *dir, *addr)
	err = server.ServeListener(ctx, hs, api, ln, *drainTimeout)
	switch {
	case err == nil:
		fmt.Println("mmserve: drained cleanly")
	case errors.Is(err, context.DeadlineExceeded):
		log.Printf("mmserve: drain deadline (%v) passed; in-flight requests were canceled", *drainTimeout)
	default:
		log.Fatalf("mmserve: %v", err)
	}
}

// serveDebug runs the pprof handlers on their own mux and listener so
// profiling never shares a port (or an accidental route) with the data
// API. It shuts down when ctx is canceled.
func serveDebug(ctx context.Context, addr string, readTimeout, writeTimeout, idleTimeout time.Duration) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Addr: addr, Handler: mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	fmt.Printf("mmserve: pprof on %s/debug/pprof/\n", addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mmserve: pprof server: %v", err)
	}
}

// logging is a minimal request logger.
func logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
