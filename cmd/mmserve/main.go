// Command mmserve runs the multi-model management service over HTTP:
// a central manager that fleets push model sets to and analysts pull
// selected models from (the deployment picture of the paper's
// Figure 1).
//
// Usage:
//
//	mmserve -dir ./store -addr :8080
//
// Endpoints (see internal/server for the wire format):
//
//	GET  /healthz
//	GET  /api/approaches
//	GET  /api/{approach}/sets
//	POST /api/{approach}/sets                    multipart: manifest + params
//	GET  /api/{approach}/sets/{id}               lineage
//	GET  /api/{approach}/sets/{id}/params        full recovery
//	GET  /api/{approach}/sets/{id}/params?indices=1,5   selective recovery
//	POST /api/{approach}/verify
//	POST /api/{approach}/prune                   {"keep": ["..."]}
//	POST /api/datasets                           register a dataset spec
//	GET  /api/datasets
//	GET  /metrics                                Prometheus text format
//
// With -debug-addr, net/http/pprof profiling handlers are served on a
// second, separate listener (keep it loopback-only; profiles expose
// internals that the data API should not).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	mmm "github.com/mmm-go/mmm"
	"github.com/mmm-go/mmm/internal/server"
)

func main() {
	var (
		dir       = flag.String("dir", "./mmstore-data", "store directory")
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional address for net/http/pprof (e.g. localhost:6060); disabled when empty")
	)
	flag.Parse()

	stores, err := mmm.OpenDirStores(*dir)
	if err != nil {
		log.Fatalf("mmserve: %v", err)
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logging(server.New(stores)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("mmserve: serving %s on %s\n", *dir, *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("mmserve: %v", err)
	}
}

// serveDebug runs the pprof handlers on their own mux and listener so
// profiling never shares a port (or an accidental route) with the data
// API.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	fmt.Printf("mmserve: pprof on %s/debug/pprof/\n", addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Printf("mmserve: pprof server: %v", err)
	}
}

// logging is a minimal request logger.
func logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
