// Command mmrouter runs the stateless cluster router: it fronts a set
// of mmserve nodes, placing every model set on R of them via a
// consistent-hash ring and speaking the exact same HTTP dialect as a
// single node — point any mmm client (mmstore -server, server.Client,
// another tool) at a router and saves become replicated, reads become
// fault-tolerant, and node loss stops being data loss.
//
// Usage:
//
//	mmrouter -addr :8090 -nodes node-a=http://10.0.0.1:8080,node-b=http://10.0.0.2:8080,node-c=http://10.0.0.3:8080
//
// Member names (the part before '=') are ring identities: keep them
// stable across restarts and address changes, or every rename
// reshuffles placement.
//
// Writes fan out to all R owners of the set and acknowledge once W
// (default: majority) committed; replicas execute under one shared
// idempotency key and a router-minted deterministic set ID, so retries
// are exactly-once and every replica stores the set under the same
// name. Reads try the owners in ring order and fail over past dead
// nodes. POST /api/cluster/rebalance re-replicates after membership
// changes, moving only the chunk bytes each destination is missing.
//
// At startup (and on demand) the router preflights every member's
// GET /api/version and refuses to route to nodes whose build, codec,
// or dedup policy differs from the cluster's — mixed storage policies
// would silently break byte-identical recovery. -allow-mixed disables
// the refusal for rolling upgrades.
//
// Extra endpoints over a node's surface:
//
//	GET  /api/cluster/status      membership, health, quorum rules
//	POST /api/cluster/rebalance   re-replicate after membership change
//
// On SIGINT/SIGTERM the router drains exactly like a node: /readyz
// flips, new requests 503, in-flight fan-outs finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/mmm-go/mmm/internal/cluster"
	"github.com/mmm-go/mmm/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", ":8090", "listen address")
		nodes = flag.String("nodes", "", "comma-separated members as name=url (e.g. a=http://host:8080,b=http://host2:8080)")

		replicas = flag.Int("replicas", 2, "replication factor R: how many nodes hold each set")
		quorumW  = flag.Int("write-quorum", 0, "acks a save needs before the router acknowledges (0 = majority of owners)")
		vnodes   = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the hash ring")

		probeInterval = flag.Duration("probe-interval", 2*time.Second, "member health-probe period (0 = passive detection only)")
		allowMixed    = flag.Bool("allow-mixed", false, "route to members whose build or storage policy mismatches (rolling upgrades only)")

		drainTimeout = flag.Duration("drain-timeout", server.DefaultDrainTimeout,
			"how long in-flight requests get to finish after SIGINT/SIGTERM before being canceled")
		requestTimeout = flag.Duration("request-timeout", 0,
			"per-request handling deadline applied via context (0 = no deadline)")
		maxBodyBytes = flag.Int64("max-body-bytes", 0,
			"request body cap in bytes; oversized bodies get 413 (0 = handler-level limits only)")
		readTimeout = flag.Duration("read-timeout", 0,
			"max duration for reading an entire request, body included (0 = no limit)")
		writeTimeout = flag.Duration("write-timeout", 0,
			"max duration for writing a response (0 = no limit)")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute,
			"max keep-alive idle time per connection (0 = no limit)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rt := cluster.NewRouter(nil, cluster.RouterConfig{
		Replicas:       *replicas,
		WriteQuorum:    *quorumW,
		VNodes:         *vnodes,
		RequestTimeout: *requestTimeout,
		MaxBodyBytes:   *maxBodyBytes,
		AllowMixed:     *allowMixed,
	})
	n, err := addMembers(rt, *nodes)
	if err != nil {
		log.Fatalf("mmrouter: %v", err)
	}
	if n == 0 {
		log.Fatalf("mmrouter: -nodes must name at least one member (name=url,...)")
	}

	// Version preflight: fail loudly on a mixed cluster, but keep
	// serving — the incompatible members are excluded, and operators
	// can fix and re-check without a restart.
	preflightCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	statuses, err := rt.CheckMembers(preflightCtx)
	cancel()
	if err != nil {
		log.Printf("mmrouter: version preflight: %v", err)
	}
	for _, ms := range statuses {
		state := "up"
		if ms.Down {
			state = "DOWN"
		}
		if ms.Incompatible != "" {
			state = "REFUSED: " + ms.Incompatible
		}
		fmt.Printf("mmrouter: member %s (%s): %s\n", ms.Name, ms.URL, state)
	}

	if *probeInterval > 0 {
		rt.StartProbing(ctx, *probeInterval)
	}

	hs := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mmrouter: %v", err)
	}
	fmt.Printf("mmrouter: routing %d members on %s (R=%d)\n", n, *addr, *replicas)
	err = server.ServeListener(ctx, hs, rt, ln, *drainTimeout)
	switch {
	case err == nil:
		fmt.Println("mmrouter: drained cleanly")
	case errors.Is(err, context.DeadlineExceeded):
		log.Printf("mmrouter: drain deadline (%v) passed; in-flight requests were canceled", *drainTimeout)
	default:
		log.Fatalf("mmrouter: %v", err)
	}
}

// addMembers parses "name=url,name=url" and registers each member.
func addMembers(rt *cluster.Router, spec string) (int, error) {
	if strings.TrimSpace(spec) == "" {
		return 0, nil
	}
	n := 0
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, ok := strings.Cut(entry, "=")
		if !ok || name == "" || url == "" {
			return n, fmt.Errorf("bad -nodes entry %q, want name=url", entry)
		}
		if err := rt.AddMember(name, url); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
