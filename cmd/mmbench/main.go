// Command mmbench regenerates the paper's evaluation: every figure and
// table of "Efficient Multi-Model Management" (EDBT 2023), plus the
// ablations this repository adds.
//
// Usage:
//
//	mmbench -exp storage            # Figure 3
//	mmbench -exp storage-rates      # §4.2 update-rate variation
//	mmbench -exp storage-size       # §4.2 FFNN-69 variation
//	mmbench -exp storage-cifar      # §4.2 CIFAR variation
//	mmbench -exp storage-overhead   # §4.2 U1 overhead vs MMlib-base
//	mmbench -dedup                  # physical bytes with vs without WithDedup
//	mmbench -exp compression        # codec storage/TTS/TTR + chunk-pipeline scaling (writes BENCH_compression.json)
//	mmbench -exp tts -setup m1      # Figure 4a
//	mmbench -exp tts -setup server  # Figure 4b
//	mmbench -exp ttr -setup m1      # Figure 5a
//	mmbench -exp ttr -setup server  # Figure 5b
//	mmbench -exp ttr-extrapolate    # §4.4 realistic-training intuition
//	mmbench -exp accident           # selective post-accident recovery
//	mmbench -exp serve              # hot-path serving: cold vs warm chunk cache (writes BENCH_serve.json)
//	mmbench -exp pull               # registry pull protocol: concurrent clients, warm caches, chaos (writes BENCH_pull.json)
//	mmbench -exp scrub              # self-healing: planted rot -> quarantine -> repair-from-peer (writes BENCH_scrub.json)
//	mmbench -exp cluster            # replicated cluster: node kill, failover, delta rebalance (writes BENCH_cluster.json)
//	mmbench -exp quality            # stale-vs-retrained model loss per cycle
//	mmbench -exp ablate-snapshot    # Update snapshot-interval ablation
//	mmbench -exp ablate-variants    # Update hash-granularity/compression
//	mmbench -exp ablate-blob-layout # O1/O3: per-model vs single blob
//	mmbench -exp advisor            # §4.5 heuristic approach selection
//	mmbench -exp all                # everything above
//
// Paper scale is -n 5000 -mode perturb (full training at n=5000 works
// but takes correspondingly longer; perturb mode produces identical
// storage and timing behaviour, see the workload package docs). The
// default scale keeps a laptop run under a minute.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/experiments"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/latency"
	"github.com/mmm-go/mmm/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see package docs)")
		n        = flag.Int("n", 1000, "number of models (paper: 5000)")
		cycles   = flag.Int("cycles", 3, "number of U3 update cycles")
		setup    = flag.String("setup", "m1", "hardware profile: m1, server, or zero")
		runs     = flag.Int("runs", 5, "timing runs per measurement (median reported)")
		mode     = flag.String("mode", "train", "update mode: train or perturb")
		arch     = flag.String("arch", "FFNN-48", "architecture: FFNN-48, FFNN-69, CIFAR")
		samples  = flag.Int("samples", 60, "training samples per update dataset")
		epochs   = flag.Int("epochs", 1, "training epochs per update")
		rate     = flag.Float64("rate", 0.10, "total update rate per cycle (half full, half partial)")
		workers  = flag.Int("workers", 1, "save/recover concurrency (1 = paper-faithful serial timing)")
		dedup    = flag.Bool("dedup", false, "run the dedup storage comparison (shorthand for -exp storage-dedup)")
		benchOut = flag.String("bench-out", "BENCH_compression.json",
			"where -exp compression writes its JSON result (empty = table only)")
		serveOut = flag.String("serve-out", "BENCH_serve.json",
			"where -exp serve writes its JSON result (empty = table only)")
		cacheBytes = flag.Int64("cache-bytes", 256<<20,
			"serving-tier chunk cache budget for -exp serve, in bytes")
		pullClients = flag.Int("pull-clients", 200, "concurrent clients for -exp pull")
		pullOut     = flag.String("pull-out", "BENCH_pull.json",
			"where -exp pull writes its JSON result (empty = table only)")
		scrubOut = flag.String("scrub-out", "BENCH_scrub.json",
			"where -exp scrub writes its JSON result (empty = table only)")
		clusterOut = flag.String("cluster-out", "BENCH_cluster.json",
			"where -exp cluster writes its JSON result (empty = table only)")
		csv     = flag.Bool("csv", false, "emit series as CSV instead of tables")
		metrics = flag.Bool("metrics", false, "print a metrics snapshot after each experiment (suppressed under -csv)")
	)
	flag.Parse()

	s, ok := latency.ByName(*setup)
	if !ok {
		fmt.Fprintf(os.Stderr, "mmbench: unknown setup %q\n", *setup)
		os.Exit(2)
	}
	opts := experiments.Options{
		ArchName:          *arch,
		NumModels:         *n,
		Cycles:            *cycles,
		FullRate:          *rate / 2,
		PartialRate:       *rate / 2,
		Setup:             s,
		Runs:              *runs,
		Mode:              workload.Mode(*mode),
		SamplesPerDataset: *samples,
		Epochs:            *epochs,
		Seed:              2023,
		Workers:           *workers,
	}

	run := func(name string) error {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		// Each experiment gets a clean metrics window so the snapshot
		// attributes operations to this experiment alone.
		obs.Default.Reset()
		defer func() {
			if *metrics && !*csv {
				fmt.Printf("-- metrics (%s) --\n%s", name, obs.Default.Summary())
			}
			fmt.Printf("   (%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}()
		switch name {
		case "storage":
			s, err := experiments.RunStorage(opts)
			if err != nil {
				return err
			}
			return emitSeries(s, *csv)
		case "storage-rates":
			res, err := experiments.RunStorageRateSweep(opts, []float64{0.10, 0.20, 0.30})
			if err != nil {
				return err
			}
			for i, s := range res.Series {
				fmt.Printf("-- update rate %.0f%% --\n", res.Rates[i]*100)
				if err := emitSeries(s, *csv); err != nil {
					return err
				}
			}
			return nil
		case "storage-size":
			cmp, err := experiments.RunStorageSizeComparison(opts, "FFNN-48", "FFNN-69")
			if err != nil {
				return err
			}
			fmt.Printf("parameter ratio %s/%s = %.3f\n", cmp.LargeArch, cmp.SmallArch, cmp.ParamRatio)
			fmt.Printf("%-12s%14s%14s\n", "approach", "U1 ratio", "last-U3 ratio")
			for _, a := range experiments.ApproachOrder {
				fmt.Printf("%-12s%14.3f%14.3f\n", a, cmp.U1Ratio[a], cmp.U3Ratio[a])
			}
			return nil
		case "storage-cifar":
			o := opts
			o.ArchName = "CIFAR"
			if o.Mode == workload.ModeTrain && o.NumModels > 200 {
				fmt.Println("note: CIFAR training at this scale is slow; using perturb mode (storage-identical)")
				o.Mode = workload.ModePerturb
			}
			s, err := experiments.RunStorage(o)
			if err != nil {
				return err
			}
			return emitSeries(s, *csv)
		case "storage-dedup":
			// The headline dedup case is a factory-cloned fleet; the
			// independent-init run shows what repetition alone buys.
			for _, clone := range []bool{true, false} {
				o := opts
				o.FactoryClone = clone
				d, err := experiments.RunDedupStorage(o)
				if err != nil {
					return err
				}
				fmt.Print(d.Table())
			}
			return nil
		case "storage-overhead":
			rep, err := experiments.RunStorageOverhead(opts)
			if err != nil {
				return err
			}
			fmt.Printf("raw parameter payload: %.3f MB\n", rep.ParamPayloadMB)
			fmt.Printf("%-12s%12s%22s\n", "approach", "U1 MB", "saving vs MMlib-base")
			for _, a := range experiments.ApproachOrder {
				fmt.Printf("%-12s%12.3f%21.1f%%\n", a, rep.U1MB[a], rep.SavingVsMMlibPct[a])
			}
			return nil
		case "tts":
			s, err := experiments.RunTTS(opts)
			if err != nil {
				return err
			}
			return emitSeries(s, *csv)
		case "ttr":
			s, err := experiments.RunTTR(opts, experiments.PaperProvenanceBudget())
			if err != nil {
				return err
			}
			return emitSeries(s, *csv)
		case "ttr-extrapolate":
			ext, err := experiments.RunProvenanceExtrapolation(opts, 90000, 10)
			if err != nil {
				return err
			}
			fmt.Print(ext.Table())
			return nil
		case "compression":
			c, err := experiments.RunCompression(opts)
			if err != nil {
				return err
			}
			fmt.Print(c.Table())
			if *benchOut != "" {
				if err := writeJSONAtomic(*benchOut, c); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *benchOut)
			}
			return nil
		case "serve":
			sv, err := experiments.RunServe(opts, *cacheBytes)
			if err != nil {
				return err
			}
			fmt.Print(sv.Table())
			if *serveOut != "" {
				if err := writeJSONAtomic(*serveOut, sv); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *serveOut)
			}
			return nil
		case "pull":
			p, err := experiments.RunPull(opts, *pullClients)
			if err != nil {
				return err
			}
			fmt.Print(p.Table())
			if *pullOut != "" {
				if err := writeJSONAtomic(*pullOut, p); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *pullOut)
			}
			return nil
		case "scrub":
			sc, err := experiments.RunScrub(opts)
			if err != nil {
				return err
			}
			fmt.Print(sc.Table())
			if *scrubOut != "" {
				if err := writeJSONAtomic(*scrubOut, sc); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *scrubOut)
			}
			return nil
		case "cluster":
			cl, err := experiments.RunCluster(opts)
			if err != nil {
				return err
			}
			fmt.Print(cl.Table())
			if *clusterOut != "" {
				if err := writeJSONAtomic(*clusterOut, cl); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *clusterOut)
			}
			return nil
		case "ablate-snapshot":
			o := opts
			if o.Cycles < 4 {
				o.Cycles = 5
			}
			a, err := experiments.RunSnapshotAblation(o, []int{0, 2, 3})
			if err != nil {
				return err
			}
			fmt.Print(a.Table())
			return nil
		case "ablate-variants":
			a, err := experiments.RunUpdateVariantAblation(opts)
			if err != nil {
				return err
			}
			fmt.Print(a.Table())
			return nil
		case "ablate-blob-layout":
			a, err := experiments.RunBlobLayoutAblation(opts)
			if err != nil {
				return err
			}
			fmt.Print(a.Table())
			return nil
		case "quality":
			q, err := experiments.RunModelQuality(opts)
			if err != nil {
				return err
			}
			fmt.Print(q.Table())
			return nil
		case "accident":
			a, err := experiments.RunAccidentRecovery(opts, 5)
			if err != nil {
				return err
			}
			fmt.Print(a.Table())
			return nil
		case "advisor":
			return runAdvisor(opts)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *dedup {
		names = []string{"storage-dedup"}
	} else if *exp == "all" {
		names = []string{
			"storage", "storage-rates", "storage-size", "storage-cifar",
			"storage-overhead", "storage-dedup", "compression",
			"tts", "ttr", "ttr-extrapolate",
			"accident", "serve", "pull", "scrub", "cluster", "quality",
			"ablate-snapshot", "ablate-variants", "ablate-blob-layout", "advisor",
		}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// writeJSONAtomic marshals v and writes it to path via a temp file and
// rename, so a failure mid-experiment (or mid-write) never leaves a
// truncated half-JSON result behind — the previous file, if any, stays
// intact until the new one is complete.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// emitSeries prints a series as a table or CSV.
func emitSeries(s *experiments.Series, asCSV bool) error {
	if asCSV {
		return s.WriteCSV(os.Stdout)
	}
	fmt.Print(s.Table())
	return nil
}

// runAdvisor demonstrates the §4.5 heuristic on three scenarios.
func runAdvisor(opts experiments.Options) error {
	scenarios := []struct {
		label string
		s     core.Scenario
	}{
		{"archive-heavy (paper default: save everything, recover rarely)", core.Scenario{
			NumModels: opts.NumModels, ParamCount: 4993, UpdateRate: 0.10,
			SavesPerRecovery: 1000, RetrainCost: 30 * time.Second,
			StorageWeight: 10, SaveWeight: 1, RecoverWeight: 0.01,
		}},
		{"balanced (storage matters, recoveries must stay moderate)", core.Scenario{
			NumModels: opts.NumModels, ParamCount: 4993, UpdateRate: 0.10,
			SavesPerRecovery: 1000, RetrainCost: 10 * time.Minute,
			StorageWeight: 5, SaveWeight: 1, RecoverWeight: 2,
		}},
		{"recovery-critical (post-incident analysis is frequent)", core.Scenario{
			NumModels: opts.NumModels, ParamCount: 4993, UpdateRate: 0.10,
			SavesPerRecovery: 2, RetrainCost: 30 * time.Second,
			StorageWeight: 0.01, SaveWeight: 0.1, RecoverWeight: 10,
		}},
	}
	for _, sc := range scenarios {
		rec, err := core.Advise(sc.s)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n  -> %s (%s)\n", sc.label, rec.Approach, rec.Rationale)
		for _, r := range rec.Ranking {
			fmt.Printf("     %-12s cost %.3f\n", r.Name, r.Cost)
		}
	}
	return nil
}
