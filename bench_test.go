// Benchmarks regenerating the paper's evaluation, one per table/figure.
//
//	go test -bench=. -benchmem
//
// Each benchmark runs the corresponding experiment at a reduced fleet
// size (the paper's n=5000 is available through cmd/mmbench, e.g.
// `mmbench -exp storage -n 5000 -mode perturb`) and reports the
// headline numbers as custom metrics, so `go test -bench` output shows
// the same relationships the paper's figures plot.
package mmm_test

import (
	"context"
	"testing"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/experiments"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/storage/latency"
	"github.com/mmm-go/mmm/internal/workload"
)

// benchOptions is the shared reduced-scale configuration. Perturb mode
// keeps training out of the loop; storage and store traffic are
// identical to training mode (verified by the experiments tests).
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.NumModels = 400
	o.Cycles = 3
	o.Runs = 1
	o.Mode = workload.ModePerturb
	o.Setup = latency.Zero()
	return o
}

// reportSeries exposes one use-case column of a series as custom
// benchmark metrics.
func reportSeries(b *testing.B, s *experiments.Series, useCase int, unit string) {
	b.Helper()
	for _, a := range experiments.ApproachOrder {
		b.ReportMetric(s.Value(a, useCase), a+"_"+unit)
	}
}

// BenchmarkFig3Storage regenerates Figure 3: storage consumption per
// use case. Metrics report the last U3 column (the steady state).
func BenchmarkFig3Storage(b *testing.B) {
	o := benchOptions()
	var s *experiments.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = experiments.RunStorage(o); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, o.Cycles, "MB_U3")
	reportSeries(b, s, 0, "MB_U1")
}

// BenchmarkStorageUpdateRates regenerates the §4.2 update-rate
// variation (10%, 20%, 30%); metrics report Update's U3 storage per
// rate — the only approach whose storage correlates with the rate.
func BenchmarkStorageUpdateRates(b *testing.B) {
	o := benchOptions()
	o.Cycles = 1
	var res *experiments.RateSweepResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.RunStorageRateSweep(o, []float64{0.10, 0.20, 0.30}); err != nil {
			b.Fatal(err)
		}
	}
	for i, rate := range res.Rates {
		b.ReportMetric(res.Series[i].Value("Update", 1), "Update_MB_at_"+percent(rate))
	}
}

func percent(rate float64) string {
	switch {
	case rate < 0.15:
		return "10pct"
	case rate < 0.25:
		return "20pct"
	default:
		return "30pct"
	}
}

// BenchmarkStorageModelSize regenerates the §4.2 FFNN-69 variation;
// metrics report the per-approach large/small storage ratios (paper:
// MMlib ≈1.7×, Baseline/Update ≈2.0×, Provenance ≈1.0×).
func BenchmarkStorageModelSize(b *testing.B) {
	o := benchOptions()
	o.Cycles = 1
	var cmp *experiments.SizeComparison
	var err error
	for i := 0; i < b.N; i++ {
		if cmp, err = experiments.RunStorageSizeComparison(o, "FFNN-48", "FFNN-69"); err != nil {
			b.Fatal(err)
		}
	}
	for _, a := range experiments.ApproachOrder {
		b.ReportMetric(cmp.U1Ratio[a], a+"_U1_ratio")
	}
	b.ReportMetric(cmp.U3Ratio["Update"], "Update_U3_ratio")
	b.ReportMetric(cmp.U3Ratio["Provenance"], "Provenance_U3_ratio")
}

// BenchmarkStorageCIFAR regenerates the §4.2 CIFAR variation.
func BenchmarkStorageCIFAR(b *testing.B) {
	o := benchOptions()
	o.ArchName = "CIFAR"
	var s *experiments.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = experiments.RunStorage(o); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, o.Cycles, "MB_U3")
}

// BenchmarkStorageOverhead regenerates the §4.2 U1 overhead comparison
// (paper: Baseline/Provenance save ≈29% vs MMlib-base).
func BenchmarkStorageOverhead(b *testing.B) {
	o := benchOptions()
	var rep *experiments.OverheadReport
	var err error
	for i := 0; i < b.N; i++ {
		if rep, err = experiments.RunStorageOverhead(o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.SavingVsMMlibPct["Baseline"], "Baseline_saving_pct")
	b.ReportMetric(rep.SavingVsMMlibPct["Provenance"], "Provenance_saving_pct")
}

// benchTTS shares the TTS benchmark body between the two setups.
func benchTTS(b *testing.B, setup latency.Setup) {
	o := benchOptions()
	o.Setup = setup
	var s *experiments.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = experiments.RunTTS(o); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, 0, "s_U1")
	reportSeries(b, s, o.Cycles, "s_U3")
}

// BenchmarkFig4aTTSM1 regenerates Figure 4a: median TTS on the M1-like
// profile (modeled store latencies; see EXPERIMENTS.md).
func BenchmarkFig4aTTSM1(b *testing.B) { benchTTS(b, latency.M1()) }

// BenchmarkFig4bTTSServer regenerates Figure 4b: median TTS on the
// server-like profile.
func BenchmarkFig4bTTSServer(b *testing.B) { benchTTS(b, latency.Server()) }

// benchTTR shares the TTR benchmark body between the two setups.
// Provenance is measured with the paper's reduced-training budget.
func benchTTR(b *testing.B, setup latency.Setup) {
	o := benchOptions()
	o.Setup = setup
	var s *experiments.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = experiments.RunTTR(o, experiments.PaperProvenanceBudget()); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, 0, "s_U1")
	reportSeries(b, s, o.Cycles, "s_U3")
}

// BenchmarkFig5aTTRM1 regenerates Figure 5a: median TTR on the M1-like
// profile.
func BenchmarkFig5aTTRM1(b *testing.B) { benchTTR(b, latency.M1()) }

// BenchmarkFig5bTTRServer regenerates Figure 5b: median TTR on the
// server-like profile.
func BenchmarkFig5bTTRServer(b *testing.B) { benchTTR(b, latency.Server()) }

// BenchmarkProvenanceExtrapolation regenerates the §4.4 intuition: the
// provenance TTR staircase under realistic training (90k samples × 10
// epochs; the paper reports ≈6/12/18 hours on its hardware).
func BenchmarkProvenanceExtrapolation(b *testing.B) {
	o := benchOptions()
	o.Mode = workload.ModeTrain // need a real training to measure
	o.NumModels = 100
	var ext *experiments.Extrapolation
	var err error
	for i := 0; i < b.N; i++ {
		if ext, err = experiments.RunProvenanceExtrapolation(o, 90000, 10); err != nil {
			b.Fatal(err)
		}
	}
	for i, d := range ext.TTR {
		b.ReportMetric(d.Hours(), "U3-"+string(rune('1'+i))+"_hours")
	}
}

// BenchmarkAblateSnapshotInterval regenerates the snapshot-interval
// ablation: storage vs last-set TTR for intervals 0 (paper) and 2.
func BenchmarkAblateSnapshotInterval(b *testing.B) {
	o := benchOptions()
	o.Cycles = 5
	o.Setup = latency.M1()
	var a *experiments.SnapshotAblation
	var err error
	for i := 0; i < b.N; i++ {
		if a, err = experiments.RunSnapshotAblation(o, []int{0, 2}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.TotalStorageMB[0], "never_MB")
	b.ReportMetric(a.TotalStorageMB[1], "every2_MB")
	b.ReportMetric(a.LastSetTTR[0].Seconds(), "never_TTR_s")
	b.ReportMetric(a.LastSetTTR[1].Seconds(), "every2_TTR_s")
}

// BenchmarkAblateUpdateVariants regenerates the hash-granularity and
// compression ablation of the Update approach.
func BenchmarkAblateUpdateVariants(b *testing.B) {
	o := benchOptions()
	var a *experiments.VariantAblation
	var err error
	for i := 0; i < b.N; i++ {
		if a, err = experiments.RunUpdateVariantAblation(o); err != nil {
			b.Fatal(err)
		}
	}
	last := len(a.UseCases) - 1
	b.ReportMetric(a.StorageMB[0][last], "layer_MB")
	b.ReportMetric(a.StorageMB[1][last], "model_MB")
	b.ReportMetric(a.StorageMB[2][last], "zlib_MB")
}

// BenchmarkAblateBlobLayout regenerates the O1/O3 layout ablation:
// write operations per full save under both layouts.
func BenchmarkAblateBlobLayout(b *testing.B) {
	o := benchOptions()
	var a *experiments.BlobLayoutAblation
	var err error
	for i := 0; i < b.N; i++ {
		if a, err = experiments.RunBlobLayoutAblation(o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.PerModelOps), "per_model_ops")
	b.ReportMetric(float64(a.SingleBlobOps), "single_blob_ops")
}

// Micro-benchmarks: one save / one recover per approach at n=400,
// uninstrumented stores (pure compute + in-memory I/O).

func benchSaveOnce(b *testing.B, build func(core.Stores) core.Approach) {
	set, err := core.NewModelSet(nn.FFNN48(), 400, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := build(core.NewMemStores())
		if _, err := a.Save(core.SaveRequest{Set: set}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRecoverOnce(b *testing.B, build func(core.Stores) core.Approach) {
	set, err := core.NewModelSet(nn.FFNN48(), 400, 1)
	if err != nil {
		b.Fatal(err)
	}
	st := core.NewMemStores()
	a := build(st)
	res, err := a.Save(core.SaveRequest{Set: set})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Recover(res.SetID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaveBaseline(b *testing.B) {
	benchSaveOnce(b, func(st core.Stores) core.Approach { return core.NewBaseline(st) })
}

func BenchmarkSaveMMlibBase(b *testing.B) {
	benchSaveOnce(b, func(st core.Stores) core.Approach { return core.NewMMlibBase(st) })
}

func BenchmarkSaveUpdateInitial(b *testing.B) {
	benchSaveOnce(b, func(st core.Stores) core.Approach { return core.NewUpdate(st) })
}

func BenchmarkRecoverBaseline(b *testing.B) {
	benchRecoverOnce(b, func(st core.Stores) core.Approach { return core.NewBaseline(st) })
}

func BenchmarkRecoverMMlibBase(b *testing.B) {
	benchRecoverOnce(b, func(st core.Stores) core.Approach { return core.NewMMlibBase(st) })
}

// Parallel-engine benchmarks: the same operation at 1 and 8 workers on
// a 1000-model FFNN-48 fleet. The speedup metrics compare the median
// per-op time at 8 workers against a serial reference measured in the
// same process, so `go test -bench=Parallel` directly reports what
// WithConcurrency buys on this machine.

// benchSerialReference times one run of op with a serial approach.
func benchSerialReference(b *testing.B, op func() error) time.Duration {
	b.Helper()
	start := time.Now()
	if err := op(); err != nil {
		b.Fatal(err)
	}
	return time.Since(start)
}

// BenchmarkSaveParallel measures the save path of Update — parameter
// concatenation plus per-layer SHA-256 hashing, the most compute-heavy
// save in the repository — at 8 workers and reports the speedup over
// serial execution as tts_speedup_x.
func BenchmarkSaveParallel(b *testing.B) {
	ctx := context.Background()
	set, err := core.NewModelSet(nn.FFNN48(), 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	serial := benchSerialReference(b, func() error {
		a := core.NewUpdate(core.NewMemStores(), core.WithConcurrency(1))
		_, err := a.SaveContext(ctx, core.SaveRequest{Set: set})
		return err
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.NewUpdate(core.NewMemStores(), core.WithConcurrency(8))
		if _, err := a.SaveContext(ctx, core.SaveRequest{Set: set}); err != nil {
			b.Fatal(err)
		}
	}
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(serial.Seconds()/perOp, "tts_speedup_x")
}

// BenchmarkRecoverParallel measures the recover path of Baseline —
// decoding 1000 models from the concatenated parameter blob — at 8
// workers and reports the speedup over serial execution as
// ttr_speedup_x.
func BenchmarkRecoverParallel(b *testing.B) {
	ctx := context.Background()
	set, err := core.NewModelSet(nn.FFNN48(), 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	st := core.NewMemStores()
	res, err := core.NewBaseline(st).SaveContext(ctx, core.SaveRequest{Set: set})
	if err != nil {
		b.Fatal(err)
	}
	serialApproach := core.NewBaseline(st, core.WithConcurrency(1))
	serial := benchSerialReference(b, func() error {
		_, err := serialApproach.RecoverContext(ctx, res.SetID)
		return err
	})
	a := core.NewBaseline(st, core.WithConcurrency(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.RecoverContext(ctx, res.SetID); err != nil {
			b.Fatal(err)
		}
	}
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(serial.Seconds()/perOp, "ttr_speedup_x")
}
