module github.com/mmm-go/mmm

go 1.22
