package mmm_test

import (
	"testing"

	mmm "github.com/mmm-go/mmm"
)

// The facade tests exercise the library exactly as a downstream user
// would: through the public package only.

func TestQuickstartRoundTrip(t *testing.T) {
	stores := mmm.NewMemStores()
	approach := mmm.NewBaseline(stores)
	set, err := mmm.NewModelSet(mmm.FFNN48(), 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := approach.Save(mmm.SaveRequest{Set: set})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := approach.Recover(res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(recovered) {
		t.Fatal("quickstart round trip lost data")
	}
}

func TestAllApproachesThroughFacade(t *testing.T) {
	stores := mmm.NewMemStores()
	approaches := []mmm.Approach{
		mmm.NewBaseline(stores),
		mmm.NewUpdate(stores),
		mmm.NewProvenance(stores),
		mmm.NewMMlibBase(stores),
	}
	set, err := mmm.NewModelSet(mmm.FFNN48(), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range approaches {
		res, err := a.Save(mmm.SaveRequest{Set: set})
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		got, err := a.Recover(res.SetID)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if !set.Equal(got) {
			t.Fatalf("%s: round trip lost data", a.Name())
		}
	}
}

func TestFleetWorkflowThroughFacade(t *testing.T) {
	cfg := mmm.DefaultWorkload()
	cfg.NumModels = 20
	cfg.FullUpdateRate = 0.1
	cfg.PartialUpdateRate = 0.1
	cfg.SamplesPerDataset = 30
	cfg.Epochs = 1

	reg := mmm.NewDatasetRegistry()
	fleet, err := mmm.NewFleet(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	stores := mmm.NewMemStores()
	stores.Datasets = reg
	p := mmm.NewProvenance(stores)

	res, err := p.Save(mmm.SaveRequest{Set: fleet.Set})
	if err != nil {
		t.Fatal(err)
	}
	updates, err := fleet.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p.Save(mmm.SaveRequest{
		Set: fleet.Set, Base: res.SetID, Updates: updates, Train: fleet.TrainInfo(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Recover(res2.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !fleet.Set.Equal(got) {
		t.Fatal("fleet provenance recovery not exact through facade")
	}
}

func TestOpenDirStoresPersists(t *testing.T) {
	dir := t.TempDir()
	stores, err := mmm.OpenDirStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	set, err := mmm.NewModelSet(mmm.FFNN48(), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mmm.NewBaseline(stores).Save(mmm.SaveRequest{Set: set})
	if err != nil {
		t.Fatal(err)
	}

	reopened, err := mmm.OpenDirStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mmm.NewBaseline(reopened).Recover(res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(got) {
		t.Fatal("on-disk stores lost the saved set")
	}
}

func TestAdviseThroughFacade(t *testing.T) {
	rec, err := mmm.Advise(mmm.Scenario{
		NumModels: 5000, ParamCount: 4993, UpdateRate: 0.1,
		SavesPerRecovery: 1000, RetrainCost: 0,
		StorageWeight: 10, SaveWeight: 1, RecoverWeight: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Approach == "" || len(rec.Ranking) != 4 {
		t.Fatalf("incomplete recommendation: %+v", rec)
	}
}

func TestTrainingThroughFacade(t *testing.T) {
	spec := mmm.DatasetSpec{
		Kind: "battery", CellID: 1, SoH: 1, Samples: 50, NoiseStd: 0.001, Seed: 5,
	}
	data, err := mmm.GenerateDataset(spec)
	if err != nil {
		t.Fatal(err)
	}
	model, err := mmm.NewModel(mmm.FFNN48(), 11)
	if err != nil {
		t.Fatal(err)
	}
	before, err := mmm.Evaluate(model, data, "mse")
	if err != nil {
		t.Fatal(err)
	}
	_, err = mmm.Train(model, data, mmm.TrainConfig{
		Epochs: 5, BatchSize: 10, LearningRate: 0.05, Loss: "mse", Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := mmm.Evaluate(model, data, "mse")
	if err != nil {
		t.Fatal(err)
	}
	if !(after < before) {
		t.Fatalf("training did not improve the battery model: %v -> %v", before, after)
	}
}
